//! Regenerates Table IV: the evaluated workloads and their measured
//! persisting-store fractions (%P-Stores), compared against the paper's
//! reported values.

use bbb_bench::{paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    let specs: Vec<ExperimentSpec> = WorkloadKind::ALL
        .iter()
        .map(|&kind| ExperimentSpec::new(kind, PersistencyMode::BbbMemorySide, &cfg, scale))
        .collect();
    let results = runner.run(&specs);

    let mut t = Table::new(
        "Table IV: evaluated workloads and persisting-store fractions",
        &[
            "Workload",
            "Description",
            "%P-Stores (measured)",
            "%P-Stores (paper)",
        ],
    );
    for (kind, r) in WorkloadKind::ALL.iter().zip(&results) {
        let stores = r.stats.get("cores.stores");
        let pstores = r.stats.get("cores.persisting_stores");
        let committed = r.stats.get("cores.committed");
        // The paper counts persisting stores against *all* stores of the
        // compiled binary (including stack traffic, register spills,
        // allocator metadata — roughly half the instruction stream of real
        // code is memory ops, a third of those stores). Our op streams
        // contain only the data-structure accesses themselves, so we report
        // persisting stores over total committed ops, the closest analogue.
        let measured = 100.0 * bbb_bench::norm(pstores, committed);
        t.row_owned(vec![
            kind.name().to_owned(),
            kind.description().to_owned(),
            format!("{measured:.1}% ({pstores}/{committed} ops; {stores} stores)"),
            format!("{:.1}%", kind.paper_pstore_pct()),
        ]);
    }

    let mut report = Report::new("table4");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note_scale(scale);
    report.emit().expect("report output");
}

//! Regenerates Table X: BBB battery volume as the bbPB size varies from 1
//! to 1024 entries, for both platforms and both battery technologies.

use bbb_bench::Report;
use bbb_energy::{volume_mm3, BatteryTech, DrainModel, EnergyCosts, Platform};
use bbb_sim::Table;

const SIZES: [usize; 7] = [1, 4, 16, 32, 64, 256, 1024];

fn main() {
    let mut header: Vec<String> = vec!["Battery / platform".into()];
    header.extend(SIZES.iter().map(ToString::to_string));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table X: BBB battery size (mm^3) vs number of bbPB entries",
        &header_refs,
    );
    for tech in BatteryTech::ALL {
        for p in [Platform::mobile(), Platform::server()] {
            let label = format!("{} / {}", tech, p.name);
            let model = DrainModel::new(p, EnergyCosts::default());
            let mut row = vec![label];
            for &e in &SIZES {
                let v = volume_mm3(model.bbb_battery_energy_j(e), tech);
                row.push(if v < 0.1 {
                    format!("{v:.3}")
                } else {
                    format!("{v:.2}")
                });
            }
            t.row_owned(row);
        }
    }
    let mut report = Report::new("table10");
    // Paper scale: these tables are the paper's own analytic arithmetic at
    // the paper's platform parameters, so the committed artifacts carry
    // (and the parity gate enforces) paper-scale provenance.
    report.meta_scale_name("paper");
    report.table(t);
    // The paper's headline derived from this table: even a 1024-entry bbPB
    // needs a far smaller battery than eADR.
    for p in [Platform::mobile(), Platform::server()] {
        let name = p.name;
        let model = DrainModel::new(p, EnergyCosts::default());
        let eadr = volume_mm3(model.eadr_battery_energy_j(), BatteryTech::SuperCap);
        let bbb1024 = volume_mm3(model.bbb_battery_energy_j(1024), BatteryTech::SuperCap);
        report.note(format!(
            "{name}: eADR/BBB-1024 volume ratio = {:.0}x (paper: 22-49x cheaper even at 1024 entries)",
            eadr / bbb1024
        ));
    }
    report.emit().expect("report output");
}

//! Regenerates Table IX: battery volume for eADR vs BBB under two storage
//! technologies, plus the footprint comparison against a mobile core.

use bbb_bench::Report;
use bbb_energy::{footprint_area_mm2, volume_mm3, BatteryTech, DrainModel, EnergyCosts, Platform};
use bbb_sim::Table;

fn main() {
    let mut t = Table::new(
        "Table IX: energy-source size (active material) and core-area footprint",
        &[
            "System",
            "Scheme",
            "SuperCap (mm^3)",
            "Li-thin (mm^3)",
            "SuperCap area vs core",
            "Li-thin area vs core",
        ],
    );
    for p in [Platform::mobile(), Platform::server()] {
        let name = p.name;
        let core = p.core_area_mm2;
        let model = DrainModel::new(p, EnergyCosts::default());
        for (scheme, energy) in [
            ("eADR", model.eadr_battery_energy_j()),
            ("BBB-32", model.bbb_battery_energy_j(32)),
        ] {
            let v_sc = volume_mm3(energy, BatteryTech::SuperCap);
            let v_li = volume_mm3(energy, BatteryTech::LiThin);
            let pct = |v: f64| {
                let r = footprint_area_mm2(v) / core;
                if r >= 2.0 {
                    format!("{r:.0}x")
                } else {
                    format!("{:.1}%", r * 100.0)
                }
            };
            t.row_owned(vec![
                name.into(),
                scheme.into(),
                format!("{v_sc:.1}"),
                format!("{v_li:.3}"),
                pct(v_sc),
                pct(v_li),
            ]);
        }
    }
    let mut report = Report::new("table9");
    // Paper scale: these tables are the paper's own analytic arithmetic at
    // the paper's platform parameters, so the committed artifacts carry
    // (and the parity gate enforces) paper-scale provenance.
    report.meta_scale_name("paper");
    report.table(t);
    report.note("paper: mobile eADR 2.9e3 / 30 mm^3 (77x / 3.6x core area), BBB 4.1 / 0.04 mm^3");
    report.note("       server eADR 34e3 / 300 mm^3 (404x / 18.7x), BBB 21.6 / 0.21 mm^3");
    report.emit().expect("report output");
}

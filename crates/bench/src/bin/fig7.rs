//! Regenerates Fig. 7: execution time (a) and NVMM writes (b) for BBB with
//! 32-entry bbPBs, BBB with 1024-entry bbPBs, and eADR, normalized to eADR,
//! for every Table IV workload.

use bbb_bench::{paper_config, ExperimentSpec, NormSeries, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    // Three points per workload, declared in spec order; the runner
    // executes them across the worker pool.
    let mut specs = Vec::new();
    for kind in WorkloadKind::ALL {
        specs.push(ExperimentSpec::new(
            kind,
            PersistencyMode::Eadr,
            &cfg,
            scale,
        ));
        specs.push(ExperimentSpec::new(
            kind,
            PersistencyMode::BbbMemorySide,
            &cfg,
            scale,
        ));
        specs.push(
            ExperimentSpec::new(kind, PersistencyMode::BbbMemorySide, &cfg, scale)
                .with_entries(1024)
                .labeled(format!("{}/BBB (1024)", kind.name())),
        );
    }
    let results = runner.run(&specs);

    let mut time_t = Table::new(
        "Fig. 7(a): execution time normalized to eADR",
        &["Workload", "BBB (32)", "BBB (1024)", "eADR"],
    );
    let mut writes_t = Table::new(
        "Fig. 7(b): NVMM writes normalized to eADR (steady-state accounting)",
        &["Workload", "BBB (32)", "BBB (1024)", "eADR"],
    );
    let (mut times32, mut times1024) = (NormSeries::new(), NormSeries::new());
    let (mut writes32, mut writes1024) = (NormSeries::new(), NormSeries::new());

    for (i, kind) in WorkloadKind::ALL.iter().enumerate() {
        let [eadr, bbb32, bbb1024] = [&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]];

        time_t.row_owned(vec![
            kind.name().into(),
            times32.push(bbb32.cycles(), eadr.cycles()),
            times1024.push(bbb1024.cycles(), eadr.cycles()),
            "1.000".into(),
        ]);
        writes_t.row_owned(vec![
            kind.name().into(),
            writes32.push(bbb32.nvmm_writes_steady(), eadr.nvmm_writes_steady()),
            writes1024.push(bbb1024.nvmm_writes_steady(), eadr.nvmm_writes_steady()),
            "1.000".into(),
        ]);
    }

    time_t.row_owned(vec![
        "geomean".into(),
        times32.geomean_cell(),
        times1024.geomean_cell(),
        "1.000".into(),
    ]);
    writes_t.row_owned(vec![
        "geomean".into(),
        writes32.geomean_cell(),
        writes1024.geomean_cell(),
        "1.000".into(),
    ]);

    let mut report = Report::new("fig7");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(time_t);
    report.note("paper: BBB-32 ~1% slower than eADR on average (2.8% worst case);");
    report.note("       BBB-1024 nearly identical to eADR.");
    report.table(writes_t);
    report.note("paper: BBB-32 adds 4.9% NVMM writes on average (range 1-7.9%);");
    report.note("       BBB-1024 under 1%.");
    report.note_scale(scale);
    report.emit().expect("report output");
}

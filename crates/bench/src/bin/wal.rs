//! Server-scale durable WAL across the persistency spectrum.
//!
//! Zipfian-sharded log appends with group commit (head publish every 8
//! appends) and ring truncation, streamed through every persistency
//! machine. Group commit exists to amortize flush cost — so it is
//! pure overhead under BBB, where each record store is already durable
//! at commit. The table shows exactly that: battery-backed rows run
//! fence-free (pinned to 0) at eADR speed with zero persist latency,
//! while PMEM pays clwb+sfence per record word and BEP its epoch drains.

use bbb_bench::{paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

const MODES: [(&str, PersistencyMode); 5] = [
    ("eadr", PersistencyMode::Eadr),
    ("bbb-mem", PersistencyMode::BbbMemorySide),
    ("bbb-proc", PersistencyMode::BbbProcessorSide),
    ("bep", PersistencyMode::Bep),
    ("pmem", PersistencyMode::Pmem),
];

/// WAL sizing per preset: (total ring-record budget, appends per core).
/// Rings are deliberately small relative to the append count so every
/// run exercises truncation.
fn wal_scale(preset: &str) -> Scale {
    match preset {
        "smoke" => Scale {
            initial: 2_048,
            per_core_ops: 400,
        },
        "paper" => Scale {
            initial: 8_192,
            per_core_ops: 8_000,
        },
        _ => Scale {
            initial: 8_192,
            per_core_ops: 2_000,
        },
    }
}

fn main() {
    let preset = Scale::from_env().name();
    let scale = wal_scale(preset);
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    let specs: Vec<ExperimentSpec> = MODES
        .iter()
        .map(|&(_, mode)| ExperimentSpec::new(WorkloadKind::Wal, mode, &cfg, scale))
        .collect();
    #[allow(clippy::disallowed_methods)] // wall clock goes to stderr only
    let t0 = std::time::Instant::now();
    let results = runner.run(&specs);
    #[allow(clippy::disallowed_methods)]
    let wall = t0.elapsed().as_secs_f64();
    let sim_ops: u64 = results.iter().map(|r| r.summary.ops).sum();
    eprintln!(
        "wal: {} points, {sim_ops} sim-ops in {wall:.2}s ({:.0} ops/sec)",
        specs.len(),
        sim_ops as f64 / wall.max(1e-9)
    );
    let base = results[0].cycles() as f64;

    let mut t = Table::new(
        "WAL append + group commit: persist latency (cycles) and write amplification",
        &[
            "Mode",
            "cycles",
            "vs eADR",
            "p50",
            "p99",
            "p999",
            "unresolved",
            "fences",
            "NVMM writes",
            "WA",
        ],
    );
    for ((label, _), r) in MODES.iter().zip(&results) {
        let persisted_bytes = r.stats.get("cores.persisting_store_bytes");
        t.row_owned(vec![
            (*label).into(),
            r.cycles().to_string(),
            format!("{:.3}", r.cycles() as f64 / base),
            r.stats.get("persist.latency.p50").to_string(),
            r.stats.get("persist.latency.p99").to_string(),
            r.stats.get("persist.latency.p999").to_string(),
            r.stats.get("persist.latency.unresolved").to_string(),
            r.stats.get("cores.fences").to_string(),
            r.nvmm_writes_steady().to_string(),
            format!(
                "{:.3}",
                (r.nvmm_writes_steady() * 64) as f64 / persisted_bytes.max(1) as f64
            ),
        ]);
    }

    let mut report = Report::new("wal");
    report.meta_scale_name(preset);
    report.meta("ring_budget", scale.initial);
    report.meta("per_core_appends", scale.per_core_ops);
    report.meta("group_commit", 8u64);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note("One log shard per (core, tenant); Zipfian tenant choice, group commit");
    report.note("every 8 appends, tail truncation when a ring fills. Identical append");
    report.note("code in every row: battery-backed modes run it fence-free (pinned 0)");
    report.note("with p999 persist latency pinned to exactly 0.");
    report.emit().expect("report output");
}

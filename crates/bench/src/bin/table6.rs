//! Prints the drain-operation energy-cost constants (paper Table VI).

use bbb_bench::Report;
use bbb_energy::EnergyCosts;
use bbb_sim::Table;

fn main() {
    let c = EnergyCosts::default();
    let mut t = Table::new(
        "Table VI: estimated energy costs for draining at a crash",
        &["Operation", "Energy cost"],
    );
    let nj = |x: f64| format!("{:.3} nJ/Byte", x * 1e9);
    t.row_owned(vec![
        "Accessing data in SRAM".into(),
        format!("{:.0} pJ/Byte", c.sram_access_j_per_byte * 1e12),
    ]);
    t.row_owned(vec![
        "Moving data L1D -> NVMM".into(),
        nj(c.l1_to_nvmm_j_per_byte),
    ]);
    t.row_owned(vec![
        "Moving data bbPB -> NVMM".into(),
        nj(c.bbpb_to_nvmm_j_per_byte),
    ]);
    t.row_owned(vec![
        "Moving data L2 -> NVMM".into(),
        nj(c.l2_to_nvmm_j_per_byte),
    ]);
    t.row_owned(vec![
        "Moving data L3 -> NVMM".into(),
        nj(c.l3_to_nvmm_j_per_byte),
    ]);
    let mut report = Report::new("table6");
    report.meta_scale_name("analytic");
    report.table(t);
    report.note(format!(
        "model parameters: dirty fraction {:.1}%, NVMM write bandwidth {:.1} GB/s per channel,",
        c.dirty_fraction * 100.0,
        c.nvmm_write_bw_per_channel / 1e9
    ));
    report.note(format!(
        "battery provisioning factor {:.2}x (back-derived from the paper's Table IX arithmetic)",
        c.provisioning_factor
    ));
    report.emit().expect("report output");
}

//! Ablations of the BBB design choices the paper motivates qualitatively:
//!
//! * **drain threshold** (§III-F: "keep bbPB as full as possible while
//!   keeping the probability of full bbPB low") — sweep 25/50/75/100% and
//!   the eager policy, observing rejections vs NVMM writes,
//! * **persistent-writeback suppression** (§III-B endurance optimization)
//!   — on vs off, observing NVMM writes,
//! * **memory-side vs processor-side** organization (§III-B) — the write
//!   and time costs side by side.

use bbb_bench::{paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::{DrainPolicy, Table};
use bbb_workloads::WorkloadKind;

fn main() {
    let scale = Scale::from_env();
    let kind = WorkloadKind::Ctree;
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    // All three ablations share one spec list so the runner can execute
    // the whole sweep on the worker pool (and memoize the points the
    // ablations have in common — e.g. threshold-100% IS the paper config).
    let mut policies: Vec<(String, DrainPolicy)> = [25u8, 50, 75, 100]
        .iter()
        .map(|&pct| {
            (
                format!("threshold {pct}%"),
                DrainPolicy::Threshold { threshold_pct: pct },
            )
        })
        .collect();
    policies.push(("eager".into(), DrainPolicy::Eager));

    let mut specs = Vec::new();
    for (name, policy) in &policies {
        specs.push(
            ExperimentSpec::new(kind, PersistencyMode::BbbMemorySide, &cfg, scale)
                .with_drain_policy(*policy)
                .labeled(format!("ctree/drain {name}")),
        );
    }
    let suppression_at = specs.len();
    for on in [true, false] {
        specs.push(
            ExperimentSpec::new(kind, PersistencyMode::BbbMemorySide, &cfg, scale)
                .with_writeback_suppression(on)
                .labeled(format!("ctree/suppression {on}")),
        );
    }
    let organization_at = specs.len();
    for mode in [
        PersistencyMode::BbbMemorySide,
        PersistencyMode::BbbProcessorSide,
    ] {
        specs.push(ExperimentSpec::new(kind, mode, &cfg, scale));
    }
    let results = runner.run(&specs);

    // --- Drain threshold sweep ---------------------------------------
    let mut t = Table::new(
        "Ablation 1: bbPB drain policy (ctree, 32 entries)",
        &["Policy", "Cycles", "NVMM writes", "Rejections", "Coalesces"],
    );
    for ((name, _), r) in policies.iter().zip(&results) {
        t.row_owned(vec![
            name.clone(),
            r.cycles().to_string(),
            r.nvmm_writes_steady().to_string(),
            r.stats.get("bbpb.rejections").to_string(),
            r.stats.get("bbpb.coalesces").to_string(),
        ]);
    }

    // --- Writeback suppression ---------------------------------------
    let mut t2 = Table::new(
        "Ablation 2: persistent-writeback suppression (ctree, BBB-32)",
        &["Suppression", "NVMM writes", "Suppressed writebacks"],
    );
    for (j, on) in [true, false].into_iter().enumerate() {
        let r = &results[suppression_at + j];
        t2.row_owned(vec![
            if on { "on (paper)" } else { "off" }.into(),
            r.nvmm_writes_steady().to_string(),
            r.stats.get("cache.suppressed_writebacks").to_string(),
        ]);
    }

    // --- Organization -------------------------------------------------
    let mut t3 = Table::new(
        "Ablation 3: bbPB organization (ctree, 32 entries)",
        &["Organization", "Cycles", "NVMM writes", "Coalesces"],
    );
    for (j, name) in ["memory-side (paper)", "processor-side"]
        .into_iter()
        .enumerate()
    {
        let r = &results[organization_at + j];
        t3.row_owned(vec![
            name.into(),
            r.cycles().to_string(),
            r.nvmm_writes_steady().to_string(),
            r.stats.get("bbpb.coalesces").to_string(),
        ]);
    }

    let mut report = Report::new("ablation");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note("higher thresholds keep entries resident longer -> more coalescing,");
    report.note("fewer NVMM writes; eager draining forfeits coalescing entirely.");
    report.table(t2);
    report.note("without suppression every persistent LLC eviction writes NVMM again");
    report.note("even though the bbPB already delivered the data - pure endurance loss.");
    report.table(t3);
    report.emit().expect("report output");
}

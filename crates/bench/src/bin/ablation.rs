//! Ablations of the BBB design choices the paper motivates qualitatively:
//!
//! * **drain threshold** (§III-F: "keep bbPB as full as possible while
//!   keeping the probability of full bbPB low") — sweep 25/50/75/100% and
//!   the eager policy, observing rejections vs NVMM writes,
//! * **persistent-writeback suppression** (§III-B endurance optimization)
//!   — on vs off, observing NVMM writes,
//! * **memory-side vs processor-side** organization (§III-B) — the write
//!   and time costs side by side.

use bbb_bench::{paper_config, run_workload, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::{DrainPolicy, Table};
use bbb_workloads::WorkloadKind;

fn main() {
    let scale = Scale::from_env();
    let kind = WorkloadKind::Ctree;

    // --- Drain threshold sweep ---------------------------------------
    let mut t = Table::new(
        "Ablation 1: bbPB drain policy (ctree, 32 entries)",
        &["Policy", "Cycles", "NVMM writes", "Rejections", "Coalesces"],
    );
    let mut policies: Vec<(String, DrainPolicy)> = [25u8, 50, 75, 100]
        .iter()
        .map(|&pct| {
            (
                format!("threshold {pct}%"),
                DrainPolicy::Threshold { threshold_pct: pct },
            )
        })
        .collect();
    policies.push(("eager".into(), DrainPolicy::Eager));
    for (name, policy) in policies {
        let mut cfg = paper_config(scale);
        cfg.bbpb.drain_policy = policy;
        let r = run_workload(kind, PersistencyMode::BbbMemorySide, &cfg, scale);
        t.row_owned(vec![
            name,
            r.cycles().to_string(),
            r.nvmm_writes_steady().to_string(),
            r.stats.get("bbpb.rejections").to_string(),
            r.stats.get("bbpb.coalesces").to_string(),
        ]);
    }
    println!("{t}");
    println!("higher thresholds keep entries resident longer -> more coalescing,");
    println!("fewer NVMM writes; eager draining forfeits coalescing entirely.");
    println!();

    // --- Writeback suppression ---------------------------------------
    let mut t = Table::new(
        "Ablation 2: persistent-writeback suppression (ctree, BBB-32)",
        &["Suppression", "NVMM writes", "Suppressed writebacks"],
    );
    for on in [true, false] {
        let mut cfg = paper_config(scale);
        cfg.suppress_persistent_writebacks = on;
        let r = run_workload(kind, PersistencyMode::BbbMemorySide, &cfg, scale);
        t.row_owned(vec![
            if on { "on (paper)" } else { "off" }.into(),
            r.nvmm_writes_steady().to_string(),
            r.stats.get("cache.suppressed_writebacks").to_string(),
        ]);
    }
    println!("{t}");
    println!("without suppression every persistent LLC eviction writes NVMM again");
    println!("even though the bbPB already delivered the data - pure endurance loss.");
    println!();

    // --- Organization -------------------------------------------------
    let mut t = Table::new(
        "Ablation 3: bbPB organization (ctree, 32 entries)",
        &["Organization", "Cycles", "NVMM writes", "Coalesces"],
    );
    for (name, mode) in [
        ("memory-side (paper)", PersistencyMode::BbbMemorySide),
        ("processor-side", PersistencyMode::BbbProcessorSide),
    ] {
        let cfg = paper_config(scale);
        let r = run_workload(kind, mode, &cfg, scale);
        t.row_owned(vec![
            name.into(),
            r.cycles().to_string(),
            r.nvmm_writes_steady().to_string(),
            r.stats.get("bbpb.coalesces").to_string(),
        ]);
    }
    println!("{t}");
}

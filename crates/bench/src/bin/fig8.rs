//! Regenerates Fig. 8: sensitivity to the bbPB size (1 … 1024 entries).
//! Reports the workload geomean of (a) bbPB rejections, (b) execution
//! time, and (c) bbPB drains to NVMM, each normalized to the 1-entry case.

use bbb_bench::{geomean, paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

const SIZES: [usize; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

fn main() {
    let scale = Scale::from_env();
    let base_cfg = paper_config(scale);
    let runner = Runner::from_env();

    // The full workload × size grid, one independent point each.
    let mut specs = Vec::new();
    for kind in WorkloadKind::ALL {
        for &entries in &SIZES {
            specs.push(
                ExperimentSpec::new(kind, PersistencyMode::BbbMemorySide, &base_cfg, scale)
                    .with_entries(entries)
                    .labeled(format!("{}/bbPB-{entries}", kind.name())),
            );
        }
    }
    let results = runner.run(&specs);

    // metric series per size, per workload.
    let mut rejections: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    let mut drains: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    for (k, _) in WorkloadKind::ALL.iter().enumerate() {
        for (i, _) in SIZES.iter().enumerate() {
            let r = &results[k * SIZES.len() + i];
            rejections[i].push(r.stats.get("bbpb.rejections") as f64);
            times[i].push(r.cycles() as f64);
            drains[i].push(r.stats.get("bbpb.drains") as f64);
        }
    }

    let mut t = Table::new(
        "Fig. 8: sensitivity to bbPB size (geomean over workloads, normalized to 1 entry)",
        &[
            "bbPB entries",
            "(a) rejections",
            "(b) execution time",
            "(c) bbPB drains",
        ],
    );
    // Normalize each workload's series to its own 1-entry value, then take
    // the geomean across workloads (the paper's methodology).
    let norm = |series: &[Vec<f64>], i: usize| -> f64 {
        let ratios: Vec<f64> = series[i]
            .iter()
            .zip(&series[0])
            .map(|(&v, &base)| (v + 1.0) / (base + 1.0)) // +1: rejections hit 0
            .collect();
        geomean(&ratios)
    };
    for (i, &entries) in SIZES.iter().enumerate() {
        t.row_owned(vec![
            entries.to_string(),
            format!("{:.4}", norm(&rejections, i)),
            format!("{:.4}", norm(&times, i)),
            format!("{:.4}", norm(&drains, i)),
        ]);
    }

    let mut report = Report::new("fig8");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note("paper: rejections fall to near zero by 16-32 entries; execution time");
    report.note("       stops improving at 32; drains keep shrinking until ~64 as larger");
    report.note("       buffers capture more coalescing. 32 entries is the chosen design");
    report.note("       point (the smallest size within ~1% of eADR).");
    report.note_scale(scale);
    report.emit().expect("report output");
}

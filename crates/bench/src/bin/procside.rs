//! Regenerates the paper's §V-C processor-side comparison: with the
//! processor-side bbPB organization, NVMM writes rise to ~2.8x eADR on
//! average because per-store entries barely coalesce, while the
//! memory-side organization stays within a few percent.

use bbb_bench::{paper_config, ExperimentSpec, NormSeries, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

const MODES: [PersistencyMode; 3] = [
    PersistencyMode::Eadr,
    PersistencyMode::BbbMemorySide,
    PersistencyMode::BbbProcessorSide,
];

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    let specs: Vec<ExperimentSpec> = WorkloadKind::ALL
        .iter()
        .flat_map(|&kind| MODES.map(|mode| ExperimentSpec::new(kind, mode, &cfg, scale)))
        .collect();
    let results = runner.run(&specs);

    let mut t = Table::new(
        "SecV-C: NVMM writes, processor-side vs memory-side bbPB (normalized to eADR)",
        &["Workload", "Memory-side (32)", "Processor-side (32)"],
    );
    let (mut mem_ratios, mut proc_ratios) = (NormSeries::new(), NormSeries::new());
    for (i, kind) in WorkloadKind::ALL.iter().enumerate() {
        let [eadr, memside, procside] = [&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]];
        let base = eadr.nvmm_writes_steady();
        t.row_owned(vec![
            kind.name().into(),
            mem_ratios.push(memside.nvmm_writes_steady(), base),
            proc_ratios.push(procside.nvmm_writes_steady(), base),
        ]);
    }
    t.row_owned(vec![
        "geomean".into(),
        mem_ratios.geomean_cell(),
        proc_ratios.geomean_cell(),
    ]);

    let mut report = Report::new("procside");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note("paper: processor-side averages ~2.8x more NVMM writes than eADR,");
    report.note("       because ordered per-store entries forgo most coalescing;");
    report.note("       memory-side stays within ~5%.");
    report.emit().expect("report output");
}

//! Regenerates the paper's §V-C processor-side comparison: with the
//! processor-side bbPB organization, NVMM writes rise to ~2.8x eADR on
//! average because per-store entries barely coalesce, while the
//! memory-side organization stays within a few percent.

use bbb_bench::{geomean, paper_config, run_workload, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);

    let mut t = Table::new(
        "SecV-C: NVMM writes, processor-side vs memory-side bbPB (normalized to eADR)",
        &["Workload", "Memory-side (32)", "Processor-side (32)"],
    );
    let (mut mem_ratios, mut proc_ratios) = (Vec::new(), Vec::new());
    for kind in WorkloadKind::ALL {
        let eadr = run_workload(kind, PersistencyMode::Eadr, &cfg, scale);
        let memside = run_workload(kind, PersistencyMode::BbbMemorySide, &cfg, scale);
        let procside = run_workload(kind, PersistencyMode::BbbProcessorSide, &cfg, scale);
        let base = eadr.nvmm_writes_steady().max(1) as f64;
        let m = memside.nvmm_writes_steady() as f64 / base;
        let p = procside.nvmm_writes_steady() as f64 / base;
        mem_ratios.push(m);
        proc_ratios.push(p);
        t.row_owned(vec![
            kind.name().into(),
            format!("{m:.3}"),
            format!("{p:.3}"),
        ]);
    }
    t.row_owned(vec![
        "geomean".into(),
        format!("{:.3}", geomean(&mem_ratios)),
        format!("{:.3}", geomean(&proc_ratios)),
    ]);
    println!("{t}");
    println!("paper: processor-side averages ~2.8x more NVMM writes than eADR,");
    println!("       because ordered per-store entries forgo most coalescing;");
    println!("       memory-side stays within ~5%.");
}

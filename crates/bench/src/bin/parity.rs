//! The paper-parity regression gate.
//!
//! Checks every committed `BENCH_*.json` artifact against the registry
//! (provenance metadata, recorded scale, paper bands) and against the
//! previously committed version of the same file, then prints a drift
//! table and exits nonzero if anything is out of band:
//!
//! ```text
//! usage: parity [--against REV] [--dir DIR] [--require-all] [--json]
//!
//!   --against REV   git revision holding the previous artifacts
//!                   (default: HEAD)
//!   --dir DIR       where the BENCH_*.json files live
//!                   (default: $BBB_JSON_DIR or .)
//!   --require-all   fail when a registered artifact is absent
//! ```

use bbb_bench::parity::{check_artifact, Finding, Status};
use bbb_bench::registry::policies;
use bbb_bench::{Json, Report};
use bbb_sim::Table;
use std::path::Path;
use std::process::Command;

fn usage() -> ! {
    eprintln!("usage: parity [--against REV] [--dir DIR] [--require-all] [--json]");
    std::process::exit(2);
}

/// The artifact as committed at `rev`, if it exists there.
fn committed_version(dir: &Path, rev: &str, file: &str) -> Option<Json> {
    let out = Command::new("git")
        .arg("-C")
        .arg(dir)
        .arg("show")
        // `./` pins the path relative to `dir` rather than the repo root.
        .arg(format!("{rev}:./{file}"))
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    Json::parse(std::str::from_utf8(&out.stdout).ok()?).ok()
}

fn main() {
    let mut against = "HEAD".to_owned();
    let mut dir = std::env::var("BBB_JSON_DIR").unwrap_or_else(|_| ".".into());
    let mut require_all = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--against" => against = args.next().unwrap_or_else(|| usage()),
            "--dir" => dir = args.next().unwrap_or_else(|| usage()),
            "--require-all" => require_all = true,
            "--json" => {} // handled by Report::new
            _ => usage(),
        }
    }
    let dir = Path::new(&dir);

    let mut findings: Vec<Finding> = Vec::new();
    let mut checked = 0usize;
    let mut skipped = Vec::new();
    for policy in policies() {
        let file = format!("BENCH_{}.json", policy.name);
        let path = dir.join(&file);
        let Ok(text) = std::fs::read_to_string(&path) else {
            if require_all {
                findings.push(Finding {
                    artifact: policy.name.to_owned(),
                    what: "artifact".to_owned(),
                    status: Status::Fail,
                    detail: format!("{file} missing (regenerate: {})", policy.regen),
                });
            } else {
                skipped.push(policy.name);
            }
            continue;
        };
        checked += 1;
        match Json::parse(&text) {
            Ok(doc) => {
                let prev = committed_version(dir, &against, &file);
                findings.extend(check_artifact(policy, &doc, prev.as_ref()));
            }
            Err(e) => findings.push(Finding {
                artifact: policy.name.to_owned(),
                what: "artifact".to_owned(),
                status: Status::Fail,
                detail: format!("unparseable JSON: {e}"),
            }),
        }
    }

    let failures = findings.iter().filter(|f| f.status == Status::Fail).count();
    let passes = findings.iter().filter(|f| f.status == Status::Ok).count();

    let mut t = Table::new(
        "Paper-parity drift table",
        &["Artifact", "Check", "Status", "Detail"],
    );
    for f in &findings {
        t.row_owned(vec![
            f.artifact.clone(),
            f.what.clone(),
            f.status.to_string(),
            f.detail.clone(),
        ]);
    }

    let mut report = Report::new("parity");
    report.meta_scale_name("gate");
    report.meta("artifacts_checked", checked);
    report.meta("checks_passed", passes);
    report.meta("checks_failed", failures);
    report.table(t);
    if !skipped.is_empty() {
        report.note(format!("not present (skipped): {}", skipped.join(", ")));
    }
    report.note(format!(
        "{checked} artifact(s) checked against paper bands and '{against}': {passes} ok, {failures} failing"
    ));
    report.emit().expect("report output");

    if failures > 0 {
        std::process::exit(1);
    }
}

//! Paper Table II: bbPB actions for every coherence operation — printed as
//! the design matrix, then demonstrated live by running the conflicting
//! workloads and showing each action's counter firing.

use bbb_bench::{paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

fn main() {
    let mut t = Table::new(
        "Table II: bbPB actions per coherence operation (memory-side design)",
        &[
            "State",
            "In bbPB?",
            "RemoteInv",
            "RemoteInt",
            "LocalRd",
            "LocalWr",
        ],
    );
    t.row(&[
        "M",
        "N",
        "unmodified",
        "unmodified",
        "unmodified",
        "allocate",
    ]);
    t.row(&[
        "M",
        "Y",
        "move entry to requester (Fig 6a)",
        "entry stays, no mem writeback (Fig 6c)",
        "unmodified",
        "coalesce",
    ]);
    t.row(&[
        "E",
        "N",
        "unmodified",
        "unmodified",
        "unmodified",
        "allocate",
    ]);
    t.row(&[
        "E",
        "Y",
        "move entry",
        "unmodified",
        "unmodified",
        "coalesce",
    ]);
    t.row(&[
        "S",
        "N",
        "unmodified",
        "unmodified",
        "unmodified",
        "allocate",
    ]);
    t.row(&[
        "S",
        "Y",
        "move entry (Fig 6b)",
        "unmodified",
        "unmodified",
        "coalesce",
    ]);
    t.row(&[
        "I",
        "N",
        "unmodified",
        "unmodified",
        "unmodified",
        "allocate",
    ]);
    t.row(&[
        "I",
        "Y",
        "move entry",
        "unmodified",
        "unmodified",
        "coalesce",
    ]);

    // Live demonstration: the conflicting workloads exercise every row.
    let scale = Scale::from_env();
    let cfg = paper_config(scale);
    let runner = Runner::from_env();
    const KINDS: [WorkloadKind; 3] = [
        WorkloadKind::SwapC,
        WorkloadKind::MutateC,
        WorkloadKind::Hashmap,
    ];
    let specs: Vec<ExperimentSpec> = KINDS
        .iter()
        .map(|&kind| ExperimentSpec::new(kind, PersistencyMode::BbbMemorySide, &cfg, scale))
        .collect();
    let results = runner.run(&specs);

    let mut demo = Table::new(
        "Table II in action: counters from conflicting runs (BBB memory-side)",
        &[
            "Workload",
            "allocations",
            "coalesces",
            "entry moves",
            "downgrades kept",
            "forced drains",
            "suppressed writebacks",
        ],
    );
    for (kind, r) in KINDS.iter().zip(&results) {
        demo.row_owned(vec![
            kind.name().into(),
            r.stats.get("bbpb.allocations").to_string(),
            r.stats.get("bbpb.coalesces").to_string(),
            r.stats.get("bbpb.entry_moves").to_string(),
            r.stats.get("bbpb.downgrades_kept").to_string(),
            r.stats.get("bbpb.forced_drains").to_string(),
            r.stats.get("cache.suppressed_writebacks").to_string(),
        ]);
    }

    let mut report = Report::new("table2");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.table(demo);
    report.note("entry moves = blocks migrating between bbPBs on remote invalidations");
    report.note("(each such block still drains to NVMM only once, from its final owner).");
    report.emit().expect("report output");
}

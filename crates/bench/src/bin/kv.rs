//! Server-scale Zipfian KV service across the persistency spectrum.
//!
//! A million-key YCSB-style KV store (mixes A/B/C, alias-table Zipfian
//! s = 0.99, multi-tenant, bursty open-loop arrivals) streamed through
//! every persistency machine. Two observables the paper's
//! microbenchmarks cannot show:
//!
//! * **Tail persist latency** — cycles from store commit to the point of
//!   persistence, p50/p99/p999 from the mergeable HDR histogram. The
//!   battery-backed modes are pinned to exactly 0 (PoP == PoV, the
//!   paper's thesis); PMEM pays the flush round-trip, BEP the epoch
//!   drain.
//! * **NVMM write amplification** — media bytes written (steady-state)
//!   per byte of persisting store the program issued; Zipfian hot lines
//!   make the bbPB coalescing visible.
//!
//! The KV keyspace is sized by preset (`BBB_SCALE`), not by the generic
//! `Scale` table sizes: `default` and `paper` run the acceptance-scale
//! million-key store.

use bbb_bench::{paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

const MODES: [(&str, PersistencyMode); 5] = [
    ("eadr", PersistencyMode::Eadr),
    ("bbb-mem", PersistencyMode::BbbMemorySide),
    ("bbb-proc", PersistencyMode::BbbProcessorSide),
    ("bep", PersistencyMode::Bep),
    ("pmem", PersistencyMode::Pmem),
];

const MIXES: [(&str, WorkloadKind); 3] = [
    ("mix A (50r/40u/10i)", WorkloadKind::KvA),
    ("mix B (95r/4u/1i)", WorkloadKind::KvB),
    ("mix C (read-only)", WorkloadKind::KvC),
];

/// KV sizing per preset: (keys, requests per core).
fn kv_scale(preset: &str) -> Scale {
    match preset {
        "smoke" => Scale {
            initial: 40_000,
            per_core_ops: 400,
        },
        // Acceptance scale: ≥ 1M keys. `paper` runs longer, not bigger.
        "paper" => Scale {
            initial: 1_000_000,
            per_core_ops: 8_000,
        },
        _ => Scale {
            initial: 1_000_000,
            per_core_ops: 2_000,
        },
    }
}

fn main() {
    let preset = Scale::from_env().name();
    let scale = kv_scale(preset);
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    let mut specs = Vec::new();
    for &(_, kind) in &MIXES {
        for &(_, mode) in &MODES {
            specs.push(ExperimentSpec::new(kind, mode, &cfg, scale));
        }
    }
    #[allow(clippy::disallowed_methods)] // wall clock goes to stderr only
    let t0 = std::time::Instant::now();
    let results = runner.run(&specs);
    #[allow(clippy::disallowed_methods)]
    let wall = t0.elapsed().as_secs_f64();
    let sim_ops: u64 = results.iter().map(|r| r.summary.ops).sum();
    eprintln!(
        "kv: {} points, {sim_ops} sim-ops in {wall:.2}s ({:.0} ops/sec)",
        specs.len(),
        sim_ops as f64 / wall.max(1e-9)
    );

    let mut report = Report::new("kv");
    report.meta_scale_name(preset);
    report.meta("keys", scale.initial);
    report.meta("per_core_requests", scale.per_core_ops);
    report.meta("zipf_s", "0.99");
    report.meta("threads", runner.threads());

    for (m, &(mix_label, _)) in MIXES.iter().enumerate() {
        let mut t = Table::new(
            &format!("KV {mix_label}: persist latency (cycles) and NVMM write amplification"),
            &[
                "Mode",
                "cycles",
                "ops",
                "p50",
                "p99",
                "p999",
                "max",
                "unresolved",
                "fences",
                "NVMM writes",
                "WA",
            ],
        );
        for (i, &(label, _)) in MODES.iter().enumerate() {
            let r = &results[m * MODES.len() + i];
            let persisted_bytes = r.stats.get("cores.persisting_store_bytes");
            let wa = if persisted_bytes == 0 {
                "n/a".to_owned()
            } else {
                format!(
                    "{:.3}",
                    (r.nvmm_writes_steady() * 64) as f64 / persisted_bytes as f64
                )
            };
            t.row_owned(vec![
                label.into(),
                r.cycles().to_string(),
                r.summary.ops.to_string(),
                r.stats.get("persist.latency.p50").to_string(),
                r.stats.get("persist.latency.p99").to_string(),
                r.stats.get("persist.latency.p999").to_string(),
                r.stats.get("persist.latency.max").to_string(),
                r.stats.get("persist.latency.unresolved").to_string(),
                r.stats.get("cores.fences").to_string(),
                r.nvmm_writes_steady().to_string(),
                wa,
            ]);
        }
        report.table(t);
    }

    report.note("Persist latency = store commit -> point of persistence, per persisting");
    report.note("store, from the log-bucketed mergeable histogram (<=3.1% relative error).");
    report.note("Battery-backed modes persist at commit: p999 pinned to exactly 0 by the");
    report.note("parity gate, as is fences=0. WA = steady NVMM media bytes per persisting");
    report.note("store byte; 'n/a' where the mix persists nothing (read-only).");
    report.emit().expect("report output");
}

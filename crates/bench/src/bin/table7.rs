//! Regenerates Table VII: estimated draining energy for BBB vs eADR
//! (dirty blocks only), plus the Table V platform summary the comparison
//! rests on.

use bbb_bench::Report;
use bbb_energy::{DrainModel, EnergyCosts, Platform};
use bbb_sim::table::{ratio, si_energy};
use bbb_sim::Table;

fn main() {
    let mut t5 = Table::new(
        "Table V: systems used to evaluate the draining costs",
        &["Component", "Mobile Class", "Server Class"],
    );
    let (m, s) = (Platform::mobile(), Platform::server());
    t5.row_owned(vec![
        "Number of cores".into(),
        m.cores.to_string(),
        s.cores.to_string(),
    ]);
    let mb = |b: u64| format!("{:.2} MB", b as f64 / (1024.0 * 1024.0));
    t5.row_owned(vec!["L1 total".into(), mb(m.l1_bytes), mb(s.l1_bytes)]);
    t5.row_owned(vec!["L2 total".into(), mb(m.l2_bytes), mb(s.l2_bytes)]);
    t5.row_owned(vec!["L3 total".into(), mb(m.l3_bytes), mb(s.l3_bytes)]);
    t5.row_owned(vec![
        "Total cache".into(),
        mb(m.total_cache_bytes()),
        mb(s.total_cache_bytes()),
    ]);
    t5.row_owned(vec![
        "Memory channels".into(),
        m.memory_channels.to_string(),
        s.memory_channels.to_string(),
    ]);
    let mut t = Table::new(
        "Table VII: estimated draining energy, eADR vs BBB (dirty blocks only)",
        &["System", "eADR", "BBB (32-entry bbPB)", "eADR/BBB"],
    );
    for p in [Platform::mobile(), Platform::server()] {
        let name = p.name;
        let model = DrainModel::new(p, EnergyCosts::default());
        let eadr = model.eadr_drain_energy_j(true);
        let bbb = model.bbb_drain_energy_j(32);
        t.row_owned(vec![
            name.into(),
            si_energy(eadr),
            si_energy(bbb),
            ratio(eadr / bbb),
        ]);
    }
    let mut report = Report::new("table7");
    // Paper scale: these tables are the paper's own analytic arithmetic at
    // the paper's platform parameters, so the committed artifacts carry
    // (and the parity gate enforces) paper-scale provenance.
    report.meta_scale_name("paper");
    report.table(t5);
    report.table(t);
    report.note("paper: mobile 46.5 mJ vs 145 µJ (320x); server 550 mJ vs 775 µJ (709x)");
    report.emit().expect("report output");
}

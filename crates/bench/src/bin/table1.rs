//! Prints the qualitative scheme comparison (paper Table I), backed by the
//! modes implemented in `bbb-core`.

use bbb_bench::Report;
use bbb_core::PersistencyMode;
use bbb_sim::Table;

fn main() {
    let mut t = Table::new(
        "Table I: schemes for providing strict memory persistency",
        &["Aspect", "PMEM", "BSP*", "BEP+", "eADR", "BBB"],
    );
    t.row(&[
        "SW complexity",
        "high (manual clwb+sfence)",
        "low",
        "medium (epoch barriers)",
        "low",
        "low",
    ]);
    t.row(&[
        "Persist instructions",
        "clwb & fence",
        "none",
        "persist barrier",
        "none",
        "none",
    ]);
    t.row(&["HW complexity", "low", "high", "medium", "low", "low"]);
    t.row(&[
        "Strict-persistency penalty",
        "high",
        "medium",
        "epoch stalls",
        "none",
        "low",
    ]);
    let battery = |m: PersistencyMode| m.battery().to_owned();
    t.row_owned(vec![
        "Battery needed".into(),
        battery(PersistencyMode::Pmem),
        "none".into(),
        battery(PersistencyMode::Bep),
        battery(PersistencyMode::Eadr),
        battery(PersistencyMode::BbbMemorySide),
    ]);
    let pop = |m: PersistencyMode| m.pop_location().to_owned();
    t.row_owned(vec![
        "PoP location".into(),
        pop(PersistencyMode::Pmem),
        "memory".into(),
        pop(PersistencyMode::Bep),
        pop(PersistencyMode::Eadr),
        pop(PersistencyMode::BbbMemorySide),
    ]);
    let mut report = Report::new("table1");
    report.meta_scale_name("analytic");
    report.table(t);
    report.note("* BSP (Bulk Strict Persistency) is a prior-work reference point the");
    report.note("  paper compares against qualitatively only; it is not implemented here.");
    report.note("+ BEP (buffered epoch persistency, volatile persist buffers) is from the");
    report.note("  paper's related work; this repository implements and simulates it");
    report.note("  (see the `spectrum` binary).");
    report.note("");
    report.note("Modes implemented and simulated by this repository:");
    for m in PersistencyMode::ALL {
        report.note(format!(
            "  {m}: flushes needed = {}, caches persistent = {}, bbPB = {}",
            m.requires_flushes(),
            m.caches_persistent(),
            m.has_bbpb()
        ));
    }
    report.emit().expect("report output");
}

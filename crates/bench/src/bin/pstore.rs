//! The bbb-pstore ring across the persistency spectrum: one unmodified
//! grant/commit/release protocol, five machines.
//!
//! This is the paper's thesis applied to the repo's own persistent
//! structure. The ring's commit path is plain stores; under the
//! battery-backed modes it must run fence-free at (near-)eADR speed,
//! while the identical code instrumented for strict PMEM pays a
//! clwb+sfence pair per commit and BEP pays its epoch barriers. The
//! `fences` column is the load-bearing one — the parity gate pins it to
//! exactly zero for eADR and both BBB organizations.

use bbb_bench::{paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

const MODES: [(&str, PersistencyMode); 5] = [
    ("eadr", PersistencyMode::Eadr),
    ("bbb-mem", PersistencyMode::BbbMemorySide),
    ("bbb-proc", PersistencyMode::BbbProcessorSide),
    ("bep", PersistencyMode::Bep),
    ("pmem", PersistencyMode::Pmem),
];

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    let specs: Vec<ExperimentSpec> = MODES
        .iter()
        .map(|&(_, mode)| ExperimentSpec::new(WorkloadKind::PstoreLog, mode, &cfg, scale))
        .collect();
    let results = runner.run(&specs);
    let base = results[0].cycles() as f64;

    let mut t = Table::new(
        "bbb-pstore ring log: producer/consumer append stream per mode",
        &["Mode", "cycles", "vs eADR", "NVMM writes", "fences"],
    );
    for ((label, _), r) in MODES.iter().zip(&results) {
        t.row_owned(vec![
            (*label).into(),
            r.cycles().to_string(),
            format!("{:.3}", r.cycles() as f64 / base),
            r.nvmm_writes().to_string(),
            r.stats.get("cores.fences").to_string(),
        ]);
    }

    let mut report = Report::new("pstore");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note("Identical ring code in every row. The battery-backed modes commit with");
    report.note("plain stores (fences = 0, by construction and by gate); strict PMEM pays");
    report.note("the FliT-style shim's clwb+sfence per commit, BEP its epoch barriers.");
    report.emit().expect("report output");
}

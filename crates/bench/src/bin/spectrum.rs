//! The persistency-model spectrum (paper §II + §VI): strict persistency
//! in software (PMEM), buffered epoch persistency with volatile persist
//! buffers (BEP, the DPO/HOPS lineage), and BBB — all normalized to eADR.
//! Shows the paper's positioning: BEP buys back most of PMEM's stalls but
//! still needs barriers and still stalls at epoch boundaries; BBB removes
//! both and matches eADR.

use bbb_bench::{geomean, paper_config, Scale};
use bbb_core::{PersistencyMode, System};
use bbb_sim::Table;
use bbb_workloads::suite::with_epoch_barriers;
use bbb_workloads::{make_workload, WorkloadKind, WorkloadParams};

fn run(kind: WorkloadKind, mode: PersistencyMode, scale: Scale) -> u64 {
    let cfg = paper_config(scale);
    let params = WorkloadParams {
        initial: scale.initial,
        per_core_ops: scale.per_core_ops,
        seed: 0xBBB_5EED,
        instrument: mode.requires_flushes(),
    };
    let mut w = make_workload(kind, &cfg, params);
    if mode.requires_epoch_barriers() {
        w = with_epoch_barriers(w);
    }
    let mut sys = System::new(cfg, mode).expect("valid config");
    sys.prepare(w.as_mut());
    let summary = sys.run(w.as_mut(), u64::MAX);
    sys.drain_all_store_buffers();
    summary.cycles
}

fn main() {
    let scale = Scale::from_env();
    let mut t = Table::new(
        "Persistency spectrum: execution time normalized to eADR",
        &[
            "Workload",
            "PMEM (strict, SW)",
            "BEP (epochs)",
            "BBB (32)",
            "eADR",
        ],
    );
    let (mut pmem_r, mut bep_r, mut bbb_r) = (Vec::new(), Vec::new(), Vec::new());
    for kind in WorkloadKind::ALL {
        let eadr = run(kind, PersistencyMode::Eadr, scale) as f64;
        let pmem = run(kind, PersistencyMode::Pmem, scale) as f64 / eadr;
        let bep = run(kind, PersistencyMode::Bep, scale) as f64 / eadr;
        let bbb = run(kind, PersistencyMode::BbbMemorySide, scale) as f64 / eadr;
        pmem_r.push(pmem);
        bep_r.push(bep);
        bbb_r.push(bbb);
        t.row_owned(vec![
            kind.name().into(),
            format!("{pmem:.3}"),
            format!("{bep:.3}"),
            format!("{bbb:.3}"),
            "1.000".into(),
        ]);
    }
    t.row_owned(vec![
        "geomean".into(),
        format!("{:.3}", geomean(&pmem_r)),
        format!("{:.3}", geomean(&bep_r)),
        format!("{:.3}", geomean(&bbb_r)),
        "1.000".into(),
    ]);
    println!("{t}");
    println!("programmability: PMEM needs clwb+sfence per persisting store; BEP needs");
    println!("an epoch barrier per failure-atomic operation (and loses open-epoch data");
    println!("at a crash); BBB needs nothing and loses nothing.");
}

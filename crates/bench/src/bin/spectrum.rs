//! The persistency-model spectrum (paper §II + §VI): strict persistency
//! in software (PMEM), buffered epoch persistency with volatile persist
//! buffers (BEP, the DPO/HOPS lineage), and BBB — all normalized to eADR.
//! Shows the paper's positioning: BEP buys back most of PMEM's stalls but
//! still needs barriers and still stalls at epoch boundaries; BBB removes
//! both and matches eADR.

use bbb_bench::{paper_config, ExperimentSpec, NormSeries, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

const MODES: [PersistencyMode; 4] = [
    PersistencyMode::Eadr,
    PersistencyMode::Pmem,
    PersistencyMode::Bep,
    PersistencyMode::BbbMemorySide,
];

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    // `ExperimentSpec::new` already turns on flush instrumentation and
    // epoch barriers where the mode demands them (PMEM, BEP).
    let specs: Vec<ExperimentSpec> = WorkloadKind::ALL
        .iter()
        .flat_map(|&kind| MODES.map(|mode| ExperimentSpec::new(kind, mode, &cfg, scale)))
        .collect();
    let results = runner.run(&specs);

    let mut t = Table::new(
        "Persistency spectrum: execution time normalized to eADR",
        &[
            "Workload",
            "PMEM (strict, SW)",
            "BEP (epochs)",
            "BBB (32)",
            "eADR",
        ],
    );
    let (mut pmem_r, mut bep_r, mut bbb_r) =
        (NormSeries::new(), NormSeries::new(), NormSeries::new());
    for (i, kind) in WorkloadKind::ALL.iter().enumerate() {
        let eadr = results[MODES.len() * i].cycles();
        t.row_owned(vec![
            kind.name().into(),
            pmem_r.push(results[MODES.len() * i + 1].cycles(), eadr),
            bep_r.push(results[MODES.len() * i + 2].cycles(), eadr),
            bbb_r.push(results[MODES.len() * i + 3].cycles(), eadr),
            "1.000".into(),
        ]);
    }
    t.row_owned(vec![
        "geomean".into(),
        pmem_r.geomean_cell(),
        bep_r.geomean_cell(),
        bbb_r.geomean_cell(),
        "1.000".into(),
    ]);

    let mut report = Report::new("spectrum");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note("programmability: PMEM needs clwb+sfence per persisting store; BEP needs");
    report.note("an epoch barrier per failure-atomic operation (and loses open-epoch data");
    report.note("at a crash); BBB needs nothing and loses nothing.");
    report.emit().expect("report output");
}

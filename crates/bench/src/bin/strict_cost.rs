//! Quantifies the motivation (paper §I/Table I "strict pers. penalty"):
//! strict persistency implemented in software on an ADR machine — a
//! `clwb`+`sfence` after every persisting store — versus BBB providing the
//! same guarantee in hardware with no ordering instructions at all.

use bbb_bench::{geomean, paper_config, run_workload, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);

    let mut t = Table::new(
        "Strict persistency cost: PMEM (ADR + clwb/sfence per store) vs BBB, normalized to eADR",
        &["Workload", "PMEM (software strict)", "BBB (32)", "eADR"],
    );
    let mut pmem_ratios = Vec::new();
    for kind in WorkloadKind::ALL {
        let eadr = run_workload(kind, PersistencyMode::Eadr, &cfg, scale);
        let bbb = run_workload(kind, PersistencyMode::BbbMemorySide, &cfg, scale);
        let pmem = run_workload(kind, PersistencyMode::Pmem, &cfg, scale);
        let base = eadr.cycles() as f64;
        let p = pmem.cycles() as f64 / base;
        pmem_ratios.push(p);
        t.row_owned(vec![
            kind.name().into(),
            format!("{p:.2}"),
            format!("{:.3}", bbb.cycles() as f64 / base),
            "1.000".into(),
        ]);
    }
    t.row_owned(vec![
        "geomean".into(),
        format!("{:.2}", geomean(&pmem_ratios)),
        "-".into(),
        "1.000".into(),
    ]);
    println!("{t}");
    println!("Every PMEM store to the persistent heap pays a flush plus a fence that");
    println!("waits out the NVMM WPQ acceptance; BBB provides the identical strict-");
    println!("persistency guarantee at (near-)eADR speed with zero added instructions.");
}

//! Quantifies the motivation (paper §I/Table I "strict pers. penalty"):
//! strict persistency implemented in software on an ADR machine — a
//! `clwb`+`sfence` after every persisting store — versus BBB providing the
//! same guarantee in hardware with no ordering instructions at all.

use bbb_bench::{geomean, paper_config, ExperimentSpec, Report, Runner, Scale};
use bbb_core::PersistencyMode;
use bbb_sim::Table;
use bbb_workloads::WorkloadKind;

const MODES: [PersistencyMode; 3] = [
    PersistencyMode::Eadr,
    PersistencyMode::BbbMemorySide,
    PersistencyMode::Pmem,
];

fn main() {
    let scale = Scale::from_env();
    let cfg = paper_config(scale);
    let runner = Runner::from_env();

    let specs: Vec<ExperimentSpec> = WorkloadKind::ALL
        .iter()
        .flat_map(|&kind| MODES.map(|mode| ExperimentSpec::new(kind, mode, &cfg, scale)))
        .collect();
    let results = runner.run(&specs);

    let mut t = Table::new(
        "Strict persistency cost: PMEM (ADR + clwb/sfence per store) vs BBB, normalized to eADR",
        &["Workload", "PMEM (software strict)", "BBB (32)", "eADR"],
    );
    let mut pmem_ratios = Vec::new();
    for (i, kind) in WorkloadKind::ALL.iter().enumerate() {
        let [eadr, bbb, pmem] = [&results[3 * i], &results[3 * i + 1], &results[3 * i + 2]];
        let base = eadr.cycles() as f64;
        let p = pmem.cycles() as f64 / base;
        pmem_ratios.push(p);
        t.row_owned(vec![
            kind.name().into(),
            format!("{p:.2}"),
            format!("{:.3}", bbb.cycles() as f64 / base),
            "1.000".into(),
        ]);
    }
    t.row_owned(vec![
        "geomean".into(),
        format!("{:.2}", geomean(&pmem_ratios)),
        "-".into(),
        "1.000".into(),
    ]);

    let mut report = Report::new("strict_cost");
    report.meta_scale(scale);
    report.meta("threads", runner.threads());
    report.table(t);
    report.note("Every PMEM store to the persistent heap pays a flush plus a fence that");
    report.note("waits out the NVMM WPQ acceptance; BBB provides the identical strict-");
    report.note("persistency guarantee at (near-)eADR speed with zero added instructions.");
    report.emit().expect("report output");
}

//! Shared harness code for the per-table/per-figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation. The heavy lifting lives in `bbb-runner`: binaries
//! declare their sweep as a `Vec<ExperimentSpec>`, hand it to a
//! [`Runner`] (parallel across `BBB_THREADS` workers, duplicate points
//! memoized, results in spec order), and print through a [`Report`]
//! (ASCII tables, plus `BENCH_<name>.json` when `--json` is passed).
//!
//! This crate re-exports the runner API so older call sites — and the
//! muscle memory of `bbb_bench::run_workload` — keep working.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bbb_runner::{
    execute_spec, geomean, json_requested, norm, paper_config, unique_points, ExperimentSpec, Json,
    NormSeries, Report, RunResult, Runner, Scale, PAPER_SEED,
};

pub mod explore;
pub mod parity;
pub mod registry;

use bbb_core::PersistencyMode;
use bbb_sim::SimConfig;
use bbb_workloads::WorkloadKind;

/// Runs one workload under one persistency mode on the given machine
/// (single-point convenience over [`ExperimentSpec`] + [`execute_spec`]).
#[must_use]
pub fn run_workload(
    kind: WorkloadKind,
    mode: PersistencyMode,
    cfg: &SimConfig,
    scale: Scale,
) -> RunResult {
    execute_spec(&ExperimentSpec::new(kind, mode, cfg, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_quickly() {
        let scale = Scale {
            initial: 200,
            per_core_ops: 20,
        };
        let cfg = paper_config(scale);
        let r = run_workload(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            scale,
        );
        assert!(r.summary.ops > 0);
        assert!(r.cycles() > 0);
        assert!(r.nvmm_writes() > 0);
    }

    #[test]
    fn run_workload_matches_spec_execution() {
        let scale = Scale {
            initial: 200,
            per_core_ops: 20,
        };
        let cfg = paper_config(scale);
        let direct = run_workload(WorkloadKind::SwapC, PersistencyMode::Eadr, &cfg, scale);
        let via_runner = Runner::with_threads(2).run(&[ExperimentSpec::new(
            WorkloadKind::SwapC,
            PersistencyMode::Eadr,
            &cfg,
            scale,
        )]);
        assert_eq!(direct, via_runner[0]);
    }
}

//! Shared harness code for the per-table/per-figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation. Simulation-backed experiments (Fig. 7, Fig. 8,
//! Table IV, the §V-C processor-side claim) share [`run_workload`], which
//! builds the paper's 8-core machine, prepares the workload's initial
//! structure, runs the measured window, and returns the merged statistics.
//!
//! # Scale control
//!
//! The paper simulates 250M instructions over 1M-node structures — hours
//! of wall-clock per point in any cycle-level simulator. Set the
//! `BBB_SCALE` environment variable to choose fidelity:
//!
//! * `smoke` — seconds per figure (CI default),
//! * `default` — a few minutes for the full set; large enough for the
//!   paper's shapes (knees at 16–64 bbPB entries, BBB-32 within a few
//!   percent of eADR),
//! * `paper` — 1M-node structures, long runs.

use bbb_core::{PersistencyMode, RunSummary, System};
use bbb_sim::{SimConfig, Stats};
use bbb_workloads::{make_workload, WorkloadKind, WorkloadParams};

/// Experiment sizing, selected via the `BBB_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Structure size built at setup.
    pub initial: u64,
    /// Measured operations per core.
    pub per_core_ops: u64,
}

impl Scale {
    /// Reads `BBB_SCALE` (`smoke`, `default`, `paper`); unknown values get
    /// the default.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("BBB_SCALE").as_deref() {
            Ok("smoke") => Scale {
                initial: 20_000,
                per_core_ops: 300,
            },
            Ok("paper") => Scale {
                initial: 1_000_000,
                per_core_ops: 8_000,
            },
            _ => Scale {
                initial: 400_000,
                per_core_ops: 2_000,
            },
        }
    }
}

/// The result of one simulated experiment point.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Run summary (cycles, ops).
    pub summary: RunSummary,
    /// Merged component statistics.
    pub stats: Stats,
}

impl RunResult {
    /// Execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.summary.cycles
    }

    /// Writes to NVMM media (the endurance metric of Fig. 7(b)).
    #[must_use]
    pub fn nvmm_writes(&self) -> u64 {
        self.stats.get("nvmm.writes")
    }

    /// Steady-state NVMM writes: media writes plus blocks still dirty in
    /// the mode's holding structures at window end (their media write
    /// falls just past the measured window; the paper's long 250M-
    /// instruction windows make this end effect invisible, short windows
    /// must add it back for a fair comparison).
    #[must_use]
    pub fn nvmm_writes_steady(&self) -> u64 {
        self.stats.get("nvmm.writes") + self.stats.get("sim.residual_persist_blocks")
    }
}

/// Runs one workload under one persistency mode on the given machine.
#[must_use]
pub fn run_workload(
    kind: WorkloadKind,
    mode: PersistencyMode,
    cfg: &SimConfig,
    scale: Scale,
) -> RunResult {
    let params = WorkloadParams {
        initial: scale.initial,
        per_core_ops: scale.per_core_ops,
        seed: 0xBBB_5EED,
        instrument: mode.requires_flushes(),
    };
    let mut w = make_workload(kind, cfg, params);
    let mut sys = System::new(cfg.clone(), mode).expect("valid config");
    sys.prepare(w.as_mut());
    let summary = sys.run(w.as_mut(), u64::MAX);
    sys.drain_all_store_buffers();
    RunResult {
        summary,
        stats: sys.stats(),
    }
}

/// The paper's simulated machine (Table III), with a persistent heap large
/// enough for the selected scale.
#[must_use]
pub fn paper_config(scale: Scale) -> SimConfig {
    let mut cfg = SimConfig::default();
    // Heap: generous headroom over the structure footprint.
    let need = (scale.initial + 8 * scale.per_core_ops) * 512;
    cfg.persistent_heap_bytes = need.next_power_of_two().max(64 * 1024 * 1024);
    cfg
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `xs` is empty or any element is non-positive.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    fn smoke_scale_runs_quickly() {
        let scale = Scale {
            initial: 200,
            per_core_ops: 20,
        };
        let cfg = paper_config(scale);
        let r = run_workload(
            WorkloadKind::Hashmap,
            PersistencyMode::BbbMemorySide,
            &cfg,
            scale,
        );
        assert!(r.summary.ops > 0);
        assert!(r.cycles() > 0);
        assert!(r.nvmm_writes() > 0);
    }
}

//! Design-space autoexplorer (`bbb-explore`): the sweep grid, per-config
//! metrics, and Pareto-frontier extraction behind ROADMAP item 5.
//!
//! The paper evaluates one design point (32-entry bbPB, 75% drain
//! threshold, 8 cores). The explorer sweeps **bbPB entries × drain
//! threshold × battery capacity × WPQ depth × core count** over the
//! server-scale KV and WAL workloads, prices each point's battery with
//! `bbb-energy`, and extracts the Pareto frontier over
//! (performance, battery volume, endurance).
//!
//! Determinism contract: the grid is enumerated in a fixed nested-loop
//! order, every simulation runs under the memoizing [`Runner`] (results
//! in spec order at any `BBB_THREADS`), and the frontier is sorted
//! canonically — so sharded output is bit-identical to serial and the
//! frontier is invariant to config enumeration order (both are tested).

use bbb_core::PersistencyMode;
use bbb_energy::{volume_mm3, BatteryTech, DrainModel, EnergyCosts, Platform};
use bbb_sim::{DrainPolicy, SimConfig};
use bbb_workloads::WorkloadKind;

use crate::{ExperimentSpec, RunResult, Runner, Scale};

/// bbPB sizes swept (entries per core; the paper's point is 32).
pub const ENTRIES: [usize; 8] = [4, 8, 16, 32, 64, 128, 256, 1024];
/// Drain thresholds swept (percent of capacity a burst empties down to).
pub const THRESHOLDS: [u8; 3] = [50, 75, 100];
/// Write-pending-queue depths swept (the paper's machine uses 64).
pub const WPQ_DEPTHS: [usize; 3] = [16, 64, 256];
/// Core counts swept (the paper evaluates 8).
pub const CORE_COUNTS: [usize; 4] = [8, 16, 32, 64];
/// Battery capacity tiers in joules: a swept design is *feasible* under a
/// tier when its provisioned bbPB drain energy fits. The largest tier
/// (1 J) admits every grid point; the smallest only small buffers on few
/// cores.
pub const CAPACITY_TIERS_J: [f64; 4] = [1e-3, 1e-2, 1e-1, 1.0];
/// Sweep subjects: the server-scale KV service (YCSB mix A) and the
/// group-commit WAL — the workload PR 9 showed saturates the 32-entry
/// bbPB.
pub const WORKLOADS: [WorkloadKind; 2] = [WorkloadKind::KvA, WorkloadKind::Wal];

/// Overhead bound defining "desaturated": the bbPB size is large enough
/// once bbb-mem runs within 5% of eADR.
pub const DESAT_BOUND: f64 = 1.05;

/// Explorer sizing per preset. Smoke matches the WAL benchmark's smoke
/// sizing: 400 appends/core is the smallest load that drives the
/// 32-entry bbPB into its saturated steady state (bbb-mem ≈1.3× eADR),
/// so the desaturation question stays answerable in CI. Larger presets
/// multiply by up to 64 cores across ~600 unique sims — keep per-core
/// ops modest.
#[must_use]
pub fn explore_scale(preset: &str) -> Scale {
    match preset {
        "smoke" => Scale {
            initial: 2_048,
            per_core_ops: 400,
        },
        "paper" => Scale {
            initial: 8_192,
            per_core_ops: 4_000,
        },
        _ => Scale {
            initial: 8_192,
            per_core_ops: 1_000,
        },
    }
}

/// One simulated grid point (the capacity axis is analytic: it gates
/// feasibility but does not change the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimPoint {
    /// Sweep subject.
    pub workload: WorkloadKind,
    /// bbPB entries per core.
    pub entries: usize,
    /// Drain threshold percent.
    pub threshold_pct: u8,
    /// WPQ depth.
    pub wpq: usize,
    /// Core count.
    pub cores: usize,
}

/// The full simulated grid in canonical (workload, entries, threshold,
/// wpq, cores) nested-loop order.
#[must_use]
pub fn sim_points() -> Vec<SimPoint> {
    let mut out = Vec::new();
    for &workload in &WORKLOADS {
        for &entries in &ENTRIES {
            for &threshold_pct in &THRESHOLDS {
                for &wpq in &WPQ_DEPTHS {
                    for &cores in &CORE_COUNTS {
                        out.push(SimPoint {
                            workload,
                            entries,
                            threshold_pct,
                            wpq,
                            cores,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Swept configs = simulated grid × battery capacity tiers (the number
/// the registry pins).
#[must_use]
pub fn config_count() -> usize {
    sim_points().len() * CAPACITY_TIERS_J.len()
}

/// The machine for one grid point: the paper's Table III machine with
/// the swept knobs applied and the persistent heap sized for
/// `cores × per_core_ops` (the shared [`crate::paper_config`] assumes
/// the default 8 cores).
#[must_use]
pub fn explore_config(scale: Scale, cores: usize, wpq: usize) -> SimConfig {
    let mut cfg = SimConfig {
        cores,
        ..SimConfig::default()
    };
    cfg.mem.wpq_entries = wpq;
    let need = (scale.initial + cores as u64 * scale.per_core_ops) * 512;
    cfg.persistent_heap_bytes = need.next_power_of_two().max(64 * 1024 * 1024);
    cfg
}

/// The bbb-mem spec for one grid point.
#[must_use]
pub fn spec_for(p: &SimPoint, scale: Scale) -> ExperimentSpec {
    let cfg = explore_config(scale, p.cores, p.wpq);
    ExperimentSpec::new(p.workload, PersistencyMode::BbbMemorySide, &cfg, scale)
        .with_entries(p.entries)
        .with_drain_policy(DrainPolicy::Threshold {
            threshold_pct: p.threshold_pct,
        })
        .labeled(format!(
            "{}/e{}/t{}/q{}/c{}",
            p.workload.name(),
            p.entries,
            p.threshold_pct,
            p.wpq,
            p.cores
        ))
}

/// The eADR baseline spec a grid point normalizes against: same
/// workload, WPQ depth, and core count; bbPB knobs pinned to the paper
/// defaults so every (entries, threshold) variant shares one baseline
/// through the runner's memo cache.
#[must_use]
pub fn baseline_for(p: &SimPoint, scale: Scale) -> ExperimentSpec {
    let cfg = explore_config(scale, p.cores, p.wpq);
    ExperimentSpec::new(p.workload, PersistencyMode::Eadr, &cfg, scale).labeled(format!(
        "{}/eadr/q{}/c{}",
        p.workload.name(),
        p.wpq,
        p.cores
    ))
}

/// Everything recorded for one simulated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The grid point.
    pub point: SimPoint,
    /// Execution cycles.
    pub cycles: u64,
    /// Matched eADR baseline cycles.
    pub base_cycles: u64,
    /// cycles / baseline cycles (performance objective; 1.0 = eADR).
    pub slowdown: f64,
    /// Steady-state NVMM media writes.
    pub nvmm_writes: u64,
    /// nvmm writes / baseline nvmm writes (endurance objective).
    pub endurance: f64,
    /// Write amplification: media bytes per persisting store byte.
    pub write_amp: f64,
    /// Fences executed (battery modes pin this to 0).
    pub fences: u64,
    /// p999 store persist latency in cycles.
    pub p999: u64,
    /// Provisioned battery energy for the bbPBs, joules.
    pub battery_j: f64,
    /// SuperCap active-material volume for that energy, mm³.
    pub volume_mm3: f64,
    /// Smallest feasible capacity tier (J), if any tier fits.
    pub min_tier_j: Option<f64>,
}

/// Prices the bbPB battery for a grid point: worst-case full buffers on
/// a server-class platform scaled to the point's core count.
#[must_use]
pub fn battery_energy_j(cores: usize, entries: usize) -> f64 {
    let model = DrainModel::new(Platform::server_scaled(cores), EnergyCosts::default());
    model.bbb_battery_energy_j(entries)
}

/// The full spec list the explorer hands the runner: each grid point's
/// bbb-mem spec followed by its eADR baseline (duplicate baselines fold
/// away in the runner's memo cache).
#[must_use]
pub fn all_specs(points: &[SimPoint], scale: Scale) -> Vec<ExperimentSpec> {
    let mut specs: Vec<ExperimentSpec> = Vec::with_capacity(points.len() * 2);
    for p in points {
        specs.push(spec_for(p, scale));
        specs.push(baseline_for(p, scale));
    }
    specs
}

/// Runs the whole grid through the runner (memoized, sharded across
/// `BBB_THREADS`, results in grid order) and derives every metric.
#[must_use]
pub fn measure(points: &[SimPoint], scale: Scale, runner: &Runner) -> Vec<Measurement> {
    let specs = all_specs(points, scale);
    let results = runner.run(&specs);
    points
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(p, pair)| measurement(p, &pair[0], &pair[1]))
        .collect()
}

fn measurement(p: &SimPoint, r: &RunResult, base: &RunResult) -> Measurement {
    let battery_j = battery_energy_j(p.cores, p.entries);
    let persisted = r.stats.get("cores.persisting_store_bytes").max(1);
    Measurement {
        point: *p,
        cycles: r.cycles(),
        base_cycles: base.cycles(),
        slowdown: r.cycles() as f64 / base.cycles().max(1) as f64,
        nvmm_writes: r.nvmm_writes_steady(),
        endurance: r.nvmm_writes_steady() as f64 / base.nvmm_writes_steady().max(1) as f64,
        write_amp: (r.nvmm_writes_steady() * 64) as f64 / persisted as f64,
        fences: r.stats.get("cores.fences"),
        p999: r.stats.get("persist.latency.p999"),
        battery_j,
        volume_mm3: volume_mm3(battery_j, BatteryTech::SuperCap),
        min_tier_j: CAPACITY_TIERS_J
            .iter()
            .copied()
            .find(|&tier| battery_j <= tier),
    }
}

/// True when `a` Pareto-dominates `b` over (performance, battery
/// volume, endurance): no worse on every objective, strictly better on
/// at least one.
#[must_use]
pub fn dominates(a: &Measurement, b: &Measurement) -> bool {
    a.slowdown <= b.slowdown
        && a.volume_mm3 <= b.volume_mm3
        && a.endurance <= b.endurance
        && (a.slowdown < b.slowdown || a.volume_mm3 < b.volume_mm3 || a.endurance < b.endurance)
}

/// Extracts the Pareto frontier over the battery-feasible measurements
/// (per workload: a KV point cannot dominate a WAL point), sorted
/// canonically so the result is invariant to input order.
#[must_use]
pub fn pareto_frontier(ms: &[Measurement]) -> Vec<Measurement> {
    let feasible: Vec<&Measurement> = ms.iter().filter(|m| m.min_tier_j.is_some()).collect();
    let mut out: Vec<Measurement> = feasible
        .iter()
        .filter(|a| {
            !feasible
                .iter()
                .any(|b| b.point.workload == a.point.workload && dominates(b, a))
        })
        .map(|m| (*m).clone())
        .collect();
    out.sort_by(|a, b| {
        a.point
            .workload
            .name()
            .cmp(b.point.workload.name())
            .then(a.slowdown.total_cmp(&b.slowdown))
            .then(a.volume_mm3.total_cmp(&b.volume_mm3))
            .then(a.endurance.total_cmp(&b.endurance))
            .then(a.point.cmp(&b.point))
    });
    out.dedup();
    out
}

/// Question (a): the smallest swept bbPB size at which the WAL under
/// bbb-mem runs within [`DESAT_BOUND`] of eADR, at the paper's other
/// knobs (75% threshold, 64-deep WPQ, 8 cores).
#[must_use]
pub fn wal_desaturation_entries(ms: &[Measurement]) -> Option<usize> {
    let mut candidates: Vec<&Measurement> = ms
        .iter()
        .filter(|m| {
            m.point.workload == WorkloadKind::Wal
                && m.point.threshold_pct == 75
                && m.point.wpq == 64
                && m.point.cores == 8
        })
        .collect();
    candidates.sort_by_key(|m| m.point.entries);
    candidates
        .iter()
        .find(|m| m.slowdown <= DESAT_BOUND)
        .map(|m| m.point.entries)
}

/// Question (b): per core count, the geomean bbb-mem slowdown at the
/// paper's design point (32 entries, 75% threshold, 64-deep WPQ) across
/// the sweep subjects — where this curve leaves [`DESAT_BOUND`], the
/// memory-side bbPB has stopped paying off.
#[must_use]
pub fn core_scaling(ms: &[Measurement]) -> Vec<(usize, f64)> {
    CORE_COUNTS
        .iter()
        .map(|&cores| {
            let ratios: Vec<f64> = ms
                .iter()
                .filter(|m| {
                    m.point.cores == cores
                        && m.point.entries == 32
                        && m.point.threshold_pct == 75
                        && m.point.wpq == 64
                })
                .map(|m| m.slowdown)
                .collect();
            (cores, crate::geomean(&ratios))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(workload: WorkloadKind, slowdown: f64, volume: f64, endurance: f64) -> Measurement {
        Measurement {
            point: SimPoint {
                workload,
                entries: 32,
                threshold_pct: 75,
                wpq: 64,
                cores: 8,
            },
            cycles: 100,
            base_cycles: 100,
            slowdown,
            nvmm_writes: 10,
            endurance,
            write_amp: 1.0,
            fences: 0,
            p999: 0,
            battery_j: 1e-3,
            volume_mm3: volume,
            min_tier_j: Some(1e-3),
        }
    }

    #[test]
    fn grid_covers_at_least_one_thousand_configs() {
        assert_eq!(
            sim_points().len(),
            WORKLOADS.len()
                * ENTRIES.len()
                * THRESHOLDS.len()
                * WPQ_DEPTHS.len()
                * CORE_COUNTS.len()
        );
        assert!(config_count() >= 1000, "swept configs: {}", config_count());
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = m(WorkloadKind::Wal, 1.0, 1.0, 1.0);
        let b = m(WorkloadKind::Wal, 1.1, 1.0, 1.0);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a), "equal points do not dominate");
    }

    #[test]
    fn frontier_keeps_nondominated_and_filters_infeasible() {
        let mut infeasible = m(WorkloadKind::Wal, 0.5, 0.5, 0.5);
        infeasible.min_tier_j = None;
        let ms = vec![
            m(WorkloadKind::Wal, 1.0, 2.0, 1.0),
            m(WorkloadKind::Wal, 2.0, 1.0, 1.0),
            m(WorkloadKind::Wal, 2.0, 2.0, 2.0), // dominated by both
            infeasible,
        ];
        let f = pareto_frontier(&ms);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.min_tier_j.is_some()));
    }

    #[test]
    fn frontier_is_per_workload() {
        // A strictly-better KV point must not evict a WAL point.
        let ms = vec![
            m(WorkloadKind::KvA, 1.0, 1.0, 1.0),
            m(WorkloadKind::Wal, 2.0, 2.0, 2.0),
        ];
        assert_eq!(pareto_frontier(&ms).len(), 2);
    }

    #[test]
    fn battery_energy_grows_with_both_axes() {
        assert!(battery_energy_j(16, 32) > battery_energy_j(8, 32));
        assert!(battery_energy_j(8, 64) > battery_energy_j(8, 32));
        // The paper's server point: 32 cores × 32 entries ≈ 7.9 mJ
        // provisioned — feasible at the 10 mJ tier but not 1 mJ.
        let e = battery_energy_j(32, 32);
        assert!(e > 1e-3 && e < 1e-2, "measured {e}");
    }

    /// ISSUE satellite: with the fixed paper seed, the explorer's sharded
    /// output is bit-identical to serial. Exercises the real sweep path
    /// (`all_specs` → `Runner::run` → `measure`) on a grid corner small
    /// enough for CI, comparing both the raw `RunResult`s and the derived
    /// `Measurement`s at 1 vs 4 threads.
    #[test]
    fn sharded_matches_serial_bit_for_bit() {
        let scale = Scale {
            initial: 256,
            per_core_ops: 16,
        };
        let points: Vec<SimPoint> = sim_points()
            .into_iter()
            .filter(|p| {
                p.cores == 8 && p.wpq == 64 && p.threshold_pct == 75 && [4, 32].contains(&p.entries)
            })
            .collect();
        assert_eq!(points.len(), 4, "two workloads x two bbPB sizes");

        let specs = all_specs(&points, scale);
        let serial = Runner::with_threads(1);
        let sharded = Runner::with_threads(4);
        assert_eq!(serial.run(&specs), sharded.run(&specs));
        assert_eq!(
            measure(&points, scale, &serial),
            measure(&points, scale, &sharded)
        );
    }

    /// ISSUE satellite: the Pareto frontier is invariant to the order the
    /// configs were enumerated in. Property-tested over seeded random
    /// measurement sets and Fisher–Yates shuffles (deterministic
    /// `SplitMix64`; no wall-clock or OS randomness).
    #[test]
    fn frontier_is_invariant_to_enumeration_order() {
        use bbb_sim::SplitMix64;

        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xBBB_5EED ^ seed);
            let mut coord = |max: f64| 0.5 + (rng.next_u64() % 64) as f64 * max / 64.0;
            let mut ms: Vec<Measurement> = (0..50)
                .map(|i| {
                    let wl = WORKLOADS[i % WORKLOADS.len()];
                    let mut x = m(wl, coord(3.0), coord(40.0), coord(5.0));
                    // Vary the point too, so ties in the objectives still
                    // have a total canonical order to resolve against.
                    x.point.entries = ENTRIES[i % ENTRIES.len()];
                    x.point.cores = CORE_COUNTS[i % CORE_COUNTS.len()];
                    if i % 7 == 0 {
                        x.min_tier_j = None; // infeasible stragglers
                    }
                    x
                })
                .collect();

            let reference = pareto_frontier(&ms);
            for _ in 0..4 {
                for i in (1..ms.len()).rev() {
                    let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                    ms.swap(i, j);
                }
                assert_eq!(
                    pareto_frontier(&ms),
                    reference,
                    "frontier changed under permutation (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn capacity_tiers_gate_feasibility() {
        let points = [
            SimPoint {
                workload: WorkloadKind::Wal,
                entries: 4,
                threshold_pct: 75,
                wpq: 64,
                cores: 8,
            },
            SimPoint {
                workload: WorkloadKind::Wal,
                entries: 1024,
                threshold_pct: 75,
                wpq: 64,
                cores: 64,
            },
        ];
        let small = battery_energy_j(points[0].cores, points[0].entries);
        let big = battery_energy_j(points[1].cores, points[1].entries);
        assert!(small <= CAPACITY_TIERS_J[0], "4×8 fits the 1 mJ tier");
        assert!(big > CAPACITY_TIERS_J[2], "1024×64 needs the largest tier");
        assert!(big <= CAPACITY_TIERS_J[3], "every grid point fits 1 J");
    }
}

//! The paper-parity gate: checks committed `BENCH_*.json` artifacts
//! against the [`registry`](crate::registry) — provenance metadata, the
//! recorded scale, every applicable paper band — and against the
//! previously committed version of the same artifact (per-cell drift
//! within the band's tolerance).
//!
//! The logic is pure over parsed [`Json`] documents so it is unit- and
//! golden-testable; the `parity` binary adds file/git I/O and the exit
//! code.

use std::fmt;

use crate::registry::{bands_for, ArtifactPolicy, CellBand};
use crate::Json;

/// Severity of one finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within the band / requirement met.
    Ok,
    /// Out of band, missing provenance, wrong scale, or drifted.
    Fail,
    /// Informational (e.g. unbanded cells changed since the last commit).
    Info,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Fail => "FAIL",
            Status::Info => "info",
        })
    }
}

/// One row of the drift table.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Artifact name.
    pub artifact: String,
    /// What was checked (`meta.scale`, `t1 geomean / BBB (32)`, ...).
    pub what: String,
    /// Verdict.
    pub status: Status,
    /// Measured value / band / previous value, human-readable.
    pub detail: String,
}

impl Finding {
    fn new(artifact: &str, what: impl Into<String>, status: Status, detail: String) -> Self {
        Finding {
            artifact: artifact.to_owned(),
            what: what.into(),
            status,
            detail,
        }
    }
}

/// Extracts the leading decimal number from a rendered table cell
/// (`"1.033"`, `"46.5 mJ"`, `"319x"`, `"98.2%"`).
#[must_use]
pub fn parse_cell(cell: &str) -> Option<f64> {
    let s = cell.trim();
    let end = s
        .char_indices()
        .take_while(|&(i, c)| c.is_ascii_digit() || c == '.' || (i == 0 && c == '-'))
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    s[..end].parse().ok()
}

/// Looks up the cell a band points at: `tables[band.table]`, the row
/// whose first cell equals `band.row`, the column whose header equals
/// `band.col`.
#[must_use]
pub fn find_cell<'a>(doc: &'a Json, band: &CellBand) -> Option<&'a str> {
    let table = doc.get("tables")?.as_arr()?.get(band.table)?;
    let header = table.get("header")?.as_arr()?;
    let col = header.iter().position(|h| h.as_str() == Some(band.col))?;
    let rows = table.get("rows")?.as_arr()?;
    let row = rows
        .iter()
        .find(|r| r.as_arr().and_then(|c| c.first()).and_then(Json::as_str) == Some(band.row))?;
    row.as_arr()?.get(col)?.as_str()
}

fn meta_str<'a>(doc: &'a Json, key: &str) -> Option<&'a str> {
    doc.get("meta")?.get(key)?.as_str()
}

/// Counts table cells that differ between two documents (same table /
/// row / column positions; shape differences count too).
#[must_use]
pub fn cells_differing(doc: &Json, prev: &Json) -> usize {
    fn rows_of(doc: &Json) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        let Some(tables) = doc.get("tables").and_then(Json::as_arr) else {
            return out;
        };
        for t in tables {
            let Some(rows) = t.get("rows").and_then(Json::as_arr) else {
                continue;
            };
            for r in rows {
                out.push(
                    r.as_arr()
                        .map(|cells| {
                            cells
                                .iter()
                                .map(|c| c.as_str().unwrap_or_default().to_owned())
                                .collect()
                        })
                        .unwrap_or_default(),
                );
            }
        }
        out
    }
    let (a, b) = (rows_of(doc), rows_of(prev));
    let mut diff = a.len().abs_diff(b.len());
    for (ra, rb) in a.iter().zip(&b) {
        diff += ra.len().abs_diff(rb.len());
        diff += ra.iter().zip(rb).filter(|(x, y)| x != y).count();
    }
    diff
}

/// Runs every check for one artifact. `prev` is the previously committed
/// version of the same document, when one exists.
#[must_use]
pub fn check_artifact(policy: &ArtifactPolicy, doc: &Json, prev: Option<&Json>) -> Vec<Finding> {
    let name = policy.name;
    let mut out = Vec::new();

    // Provenance: the artifact must say how it was made.
    for key in ["scale", "commit", "command"] {
        if meta_str(doc, key).is_none() {
            out.push(Finding::new(
                name,
                format!("meta.{key}"),
                Status::Fail,
                format!("missing (regenerate: {})", policy.regen),
            ));
        }
    }

    // Scale: the committed artifact must be at the registry's fidelity.
    let scale = meta_str(doc, "scale").unwrap_or("");
    if !scale.is_empty() {
        if scale == policy.scale {
            out.push(Finding::new(
                name,
                "meta.scale",
                Status::Ok,
                scale.to_owned(),
            ));
        } else {
            out.push(Finding::new(
                name,
                "meta.scale",
                Status::Fail,
                format!(
                    "recorded '{scale}', registry requires '{}' (regenerate: {})",
                    policy.scale, policy.regen
                ),
            ));
        }
    }

    // Paper bands at the recorded scale.
    for band in bands_for(name, scale) {
        let what = format!("t{} {} / {}", band.table, band.row, band.col);
        let Some(cell) = find_cell(doc, band) else {
            out.push(Finding::new(
                name,
                what,
                Status::Fail,
                "cell not found (table shape changed?)".to_owned(),
            ));
            continue;
        };
        let Some(value) = parse_cell(cell) else {
            out.push(Finding::new(
                name,
                what,
                Status::Fail,
                format!("unparseable cell '{cell}'"),
            ));
            continue;
        };
        let dev = (value - band.paper).abs();
        let vs_paper = format!("measured {value} vs paper {} ± {}", band.paper, band.tol);
        if dev > band.tol {
            out.push(Finding::new(name, what, Status::Fail, vs_paper));
            continue;
        }
        // Drift vs the previous committed run: a banded cell may not move
        // by more than its tolerance between commits, even inside the
        // paper band.
        if let Some(prev_value) = prev.and_then(|p| find_cell(p, band)).and_then(parse_cell) {
            let drift = (value - prev_value).abs();
            if drift > band.tol {
                out.push(Finding::new(
                    name,
                    what,
                    Status::Fail,
                    format!(
                        "{vs_paper}; drifted from previous {prev_value} (|Δ| {drift:.4} > {})",
                        band.tol
                    ),
                ));
                continue;
            }
        }
        out.push(Finding::new(name, what, Status::Ok, vs_paper));
    }

    // Informational summary of unbanded movement since the last commit.
    if let Some(prev) = prev {
        let n = cells_differing(doc, prev);
        if n > 0 {
            out.push(Finding::new(
                name,
                "vs previous commit",
                Status::Info,
                format!("{n} table cell(s) differ"),
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::policy_for;

    fn doc(scale: &str, cell: &str) -> Json {
        Json::parse(&format!(
            r#"{{"name":"fig7","meta":{{"commit":"abc","command":"fig7 --json","scale":"{scale}"}},
               "tables":[
                 {{"title":"a","header":["Workload","BBB (32)","BBB (1024)","eADR"],
                   "rows":[["rtree","1.000","1.000","1.000"],
                           ["ctree","1.000","1.000","1.000"],
                           ["hashmap","1.000","1.000","1.000"],
                           ["mutateNC","1.000","1.000","1.000"],
                           ["mutateC","1.000","1.000","1.000"],
                           ["swapNC","1.030","1.000","1.000"],
                           ["swapC","1.010","1.000","1.000"],
                           ["geomean","1.008","1.000","1.000"]]}},
                 {{"title":"b","header":["Workload","BBB (32)","BBB (1024)","eADR"],
                   "rows":[["rtree","1.020","1.000","1.000"],
                           ["ctree","1.010","1.000","1.000"],
                           ["hashmap","1.050","1.000","1.000"],
                           ["mutateNC","1.080","1.000","1.000"],
                           ["mutateC","1.080","1.000","1.000"],
                           ["swapNC","1.080","1.000","1.000"],
                           ["swapC","1.080","1.000","1.000"],
                           ["geomean","{cell}","1.000","1.000"]]}}],
               "notes":[]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn parse_cell_extracts_leading_numbers() {
        assert_eq!(parse_cell("1.033"), Some(1.033));
        assert_eq!(parse_cell("46.5 mJ"), Some(46.5));
        assert_eq!(parse_cell("319x"), Some(319.0));
        assert_eq!(parse_cell("98.2%"), Some(98.2));
        assert_eq!(parse_cell("-0.5"), Some(-0.5));
        assert_eq!(parse_cell("n/a"), None);
        assert_eq!(parse_cell(""), None);
    }

    #[test]
    fn wrong_scale_fails() {
        let policy = policy_for("fig7").unwrap();
        let findings = check_artifact(policy, &doc("smoke", "1.049"), None);
        assert!(findings
            .iter()
            .any(|f| f.what == "meta.scale" && f.status == Status::Fail));
    }

    #[test]
    fn missing_provenance_fails() {
        let policy = policy_for("fig7").unwrap();
        let bare = Json::parse(r#"{"name":"fig7","meta":{},"tables":[],"notes":[]}"#).unwrap();
        let findings = check_artifact(policy, &bare, None);
        let failed: Vec<_> = findings
            .iter()
            .filter(|f| f.status == Status::Fail)
            .map(|f| f.what.as_str())
            .collect();
        assert!(failed.contains(&"meta.scale"));
        assert!(failed.contains(&"meta.commit"));
        assert!(failed.contains(&"meta.command"));
    }

    #[test]
    fn out_of_band_cell_fails_and_in_band_passes() {
        let policy = policy_for("fig7").unwrap();
        let ok = check_artifact(policy, &doc("default", "1.049"), None);
        assert!(ok
            .iter()
            .filter(|f| f.what.contains("t1 geomean / BBB (32)"))
            .all(|f| f.status == Status::Ok));
        let bad = check_artifact(policy, &doc("default", "1.300"), None);
        assert!(bad
            .iter()
            .any(|f| f.what.contains("t1 geomean / BBB (32)") && f.status == Status::Fail));
    }

    #[test]
    fn drift_beyond_tolerance_fails_even_inside_band() {
        let policy = policy_for("fig7").unwrap();
        // 0.94 and 1.16 are both within paper 1.049 ± 0.12, but the move
        // between commits exceeds the tolerance.
        let findings = check_artifact(
            policy,
            &doc("default", "1.160"),
            Some(&doc("default", "0.940")),
        );
        assert!(findings
            .iter()
            .any(|f| f.what.contains("t1 geomean / BBB (32)")
                && f.status == Status::Fail
                && f.detail.contains("drifted")));
    }

    #[test]
    fn unbanded_changes_are_informational() {
        let policy = policy_for("fig7").unwrap();
        let a = doc("default", "1.049");
        let mut b_text = a.to_string().replace("\"1.020\"", "\"1.021\"");
        b_text.truncate(b_text.len());
        let b = Json::parse(&b_text).unwrap();
        let findings = check_artifact(policy, &a, Some(&b));
        assert!(findings
            .iter()
            .any(|f| f.what == "vs previous commit" && f.status == Status::Info));
        assert!(!findings.iter().any(|f| f.status == Status::Fail));
    }

    #[test]
    fn missing_cell_is_a_failure() {
        let policy = policy_for("fig7").unwrap();
        let shapeless = Json::parse(
            r#"{"name":"fig7","meta":{"commit":"x","command":"y","scale":"default"},
                "tables":[],"notes":[]}"#,
        )
        .unwrap();
        let findings = check_artifact(policy, &shapeless, None);
        assert!(findings
            .iter()
            .any(|f| f.status == Status::Fail && f.detail.contains("cell not found")));
    }

    #[test]
    fn cells_differing_counts_changes_and_shape() {
        let a = doc("default", "1.049");
        assert_eq!(cells_differing(&a, &a), 0);
        let b = doc("default", "1.050");
        assert_eq!(cells_differing(&a, &b), 1);
    }
}

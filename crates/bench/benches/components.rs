//! Microbenchmarks for the simulator's hot components: bbPB
//! allocation/coalescing, the MESI protocol, the WPQ, and a full-system
//! workload step — the costs that bound how large an experiment the
//! harness can run.
//!
//! Dependency-free (`harness = false`): each benchmark runs a warmup, then
//! measures batches of iterations with `std::time::Instant` and reports
//! the best ns/iter (the classic min-of-batches estimator, robust against
//! scheduler noise). Run with:
//!
//! ```text
//! cargo bench -p bbb-bench --features bench-criterion
//! ```

use std::hint::black_box;
use std::time::Instant;

use bbb_cache::{CacheHierarchy, NullHooks};
use bbb_core::{Bbpb, PersistencyMode, System};
use bbb_mem::NvmmController;
use bbb_sim::{AddressMap, BbpbConfig, BlockAddr, MemTiming, MemoryPort, SimConfig};
use bbb_workloads::{make_workload, WorkloadKind, WorkloadParams};

/// Measures `f` and prints a `name ... ns/iter` line: `batches` batches of
/// `iters_per_batch` calls each, reporting the fastest batch.
fn bench(name: &str, iters_per_batch: u32, batches: u32, mut f: impl FnMut()) {
    // Warmup: one batch, unmeasured.
    for _ in 0..iters_per_batch {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        // Perf-timing site: the bench harness is the thing being timed.
        #[allow(clippy::disallowed_methods)]
        let t0 = Instant::now();
        for _ in 0..iters_per_batch {
            f();
        }
        let ns = t0.elapsed().as_nanos() as f64 / f64::from(iters_per_batch);
        best = best.min(ns);
    }
    println!("{name:40} {best:12.1} ns/iter");
}

fn bench_bbpb() {
    let mut nvmm = NvmmController::new(MemTiming::default());
    let mut pb = Bbpb::new(&BbpbConfig::default());
    let mut i = 0u64;
    bench("bbpb_allocate_coalesce_drain", 10_000, 20, || {
        // Two fresh blocks + one coalescing store, like a structure op.
        let t = i * 10;
        pb.allocate(t, BlockAddr::from_index(i % 4096), [1; 64], &mut nvmm);
        pb.allocate(
            t + 1,
            BlockAddr::from_index(4096 + i % 64),
            [2; 64],
            &mut nvmm,
        );
        pb.allocate(t + 2, BlockAddr::from_index(i % 4096), [3; 64], &mut nvmm);
        i += 1;
        black_box(&pb);
    });
}

fn bench_protocol() {
    let cfg = SimConfig::default();
    let mut h = CacheHierarchy::new(&cfg);
    let mut mem = NvmmController::new(MemTiming::default());
    let mut hooks = NullHooks;
    let map = AddressMap::new(&cfg);
    let base = BlockAddr::containing(map.persistent_base());
    let mut t = 0u64;
    bench("mesi_write_ping_pong", 10_000, 20, || {
        let core = (t % 2) as usize;
        let block = BlockAddr::from_index(base.index() + t % 512);
        h.write(t * 20, core, block, 0, &[t as u8], &mut mem, &mut hooks);
        t += 1;
        black_box(&h);
    });
}

fn bench_wpq() {
    let mut n = NvmmController::new(MemTiming::default());
    let mut t = 0u64;
    bench("nvmm_write_through_wpq", 10_000, 20, || {
        let out = MemoryPort::write_block(
            &mut n,
            t * 4,
            BlockAddr::from_index(t % 8192),
            [t as u8; 64],
        );
        t += 1;
        black_box(out);
    });
}

fn bench_full_system() {
    bench("system_run_hashmap_1000_ops", 5, 8, || {
        let cfg = SimConfig::default();
        let params = WorkloadParams {
            initial: 1_000,
            per_core_ops: 125,
            seed: 1,
            instrument: false,
        };
        let mut w = make_workload(WorkloadKind::Hashmap, &cfg, params);
        let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
        sys.prepare(w.as_mut());
        let summary = sys.run(w.as_mut(), u64::MAX);
        black_box(summary.cycles);
    });
}

fn main() {
    // `cargo bench` passes filter/--bench args; a filter selects by
    // substring like the criterion harness did.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let wants = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));
    if wants("bbpb_allocate_coalesce_drain") {
        bench_bbpb();
    }
    if wants("mesi_write_ping_pong") {
        bench_protocol();
    }
    if wants("nvmm_write_through_wpq") {
        bench_wpq();
    }
    if wants("system_run_hashmap_1000_ops") {
        bench_full_system();
    }
}

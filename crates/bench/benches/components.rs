//! Criterion microbenchmarks for the simulator's hot components: bbPB
//! allocation/coalescing, the MESI protocol, the WPQ, and a full-system
//! workload step — the costs that bound how large an experiment the
//! harness can run.

use bbb_core::{Bbpb, PersistencyMode, System};
use bbb_cache::{CacheHierarchy, NullHooks};
use bbb_mem::NvmmController;
use bbb_sim::{AddressMap, BbpbConfig, BlockAddr, MemTiming, MemoryPort, SimConfig};
use bbb_workloads::{make_workload, WorkloadKind, WorkloadParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_bbpb(c: &mut Criterion) {
    c.bench_function("bbpb_allocate_coalesce_drain", |b| {
        let mut nvmm = NvmmController::new(MemTiming::default());
        let mut pb = Bbpb::new(&BbpbConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            // Two fresh blocks + one coalescing store, like a structure op.
            let t = i * 10;
            pb.allocate(t, BlockAddr::from_index(i % 4096), [1; 64], &mut nvmm);
            pb.allocate(t + 1, BlockAddr::from_index(4096 + i % 64), [2; 64], &mut nvmm);
            pb.allocate(t + 2, BlockAddr::from_index(i % 4096), [3; 64], &mut nvmm);
            i += 1;
            black_box(&pb);
        });
    });
}

fn bench_protocol(c: &mut Criterion) {
    c.bench_function("mesi_write_ping_pong", |b| {
        let cfg = SimConfig::default();
        let mut h = CacheHierarchy::new(&cfg);
        let mut mem = NvmmController::new(MemTiming::default());
        let mut hooks = NullHooks;
        let map = AddressMap::new(&cfg);
        let base = BlockAddr::containing(map.persistent_base());
        let mut t = 0u64;
        b.iter(|| {
            let core = (t % 2) as usize;
            let block = BlockAddr::from_index(base.index() + t % 512);
            h.write(t * 20, core, block, 0, &[t as u8], &mut mem, &mut hooks);
            t += 1;
            black_box(&h);
        });
    });
}

fn bench_wpq(c: &mut Criterion) {
    c.bench_function("nvmm_write_through_wpq", |b| {
        let mut n = NvmmController::new(MemTiming::default());
        let mut t = 0u64;
        b.iter(|| {
            let out = MemoryPort::write_block(
                &mut n,
                t * 4,
                BlockAddr::from_index(t % 8192),
                [t as u8; 64],
            );
            t += 1;
            black_box(out);
        });
    });
}

fn bench_full_system(c: &mut Criterion) {
    c.bench_function("system_run_hashmap_1000_ops", |b| {
        b.iter(|| {
            let cfg = SimConfig::default();
            let params = WorkloadParams {
                initial: 1_000,
                per_core_ops: 125,
                seed: 1,
                instrument: false,
            };
            let mut w = make_workload(WorkloadKind::Hashmap, &cfg, params);
            let mut sys = System::new(cfg, PersistencyMode::BbbMemorySide).unwrap();
            sys.prepare(w.as_mut());
            let summary = sys.run(w.as_mut(), u64::MAX);
            black_box(summary.cycles)
        });
    });
}

criterion_group!(
    benches,
    bench_bbpb,
    bench_protocol,
    bench_wpq,
    bench_full_system
);
criterion_main!(benches);

//! Energy and bandwidth constants (paper Table VI and §IV-C).

/// Per-byte energy and bandwidth constants used by the drain model.
///
/// The defaults reproduce the paper's Table VI exactly; construct a custom
/// instance to explore other technology points.
///
/// # Examples
///
/// ```
/// use bbb_energy::EnergyCosts;
/// let c = EnergyCosts::default();
/// assert_eq!(c.l1_to_nvmm_j_per_byte, 11.839e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyCosts {
    /// Accessing data in SRAM cells (caches or bbPB): 1 pJ/B.
    pub sram_access_j_per_byte: f64,
    /// Moving a byte from the L1D to NVMM: 11.839 nJ/B.
    pub l1_to_nvmm_j_per_byte: f64,
    /// Moving a byte from the bbPB to NVMM: same path length as L1D.
    pub bbpb_to_nvmm_j_per_byte: f64,
    /// Moving a byte from L2 to NVMM: 11.228 nJ/B.
    pub l2_to_nvmm_j_per_byte: f64,
    /// Moving a byte from L3 to NVMM: the paper assumes no increase over
    /// L2 (an optimistic figure *for eADR*).
    pub l3_to_nvmm_j_per_byte: f64,
    /// Average dirty fraction of cache blocks at a crash (44.9%, matching
    /// the paper's measurement and Garcia et al.).
    pub dirty_fraction: f64,
    /// NVMM write bandwidth per memory channel, from the Optane DC
    /// characterization the paper cites: 2.3 GB/s.
    pub nvmm_write_bw_per_channel: f64,
    /// Battery over-provisioning factor, back-derived from the paper's
    /// Table IX numbers (≈10.15× the raw full-drain energy). Applied
    /// identically to eADR and BBB.
    pub provisioning_factor: f64,
}

impl Default for EnergyCosts {
    fn default() -> Self {
        Self {
            sram_access_j_per_byte: 1e-12,
            l1_to_nvmm_j_per_byte: 11.839e-9,
            bbpb_to_nvmm_j_per_byte: 11.839e-9,
            l2_to_nvmm_j_per_byte: 11.228e-9,
            l3_to_nvmm_j_per_byte: 11.228e-9,
            dirty_fraction: 0.449,
            nvmm_write_bw_per_channel: 2.3e9,
            provisioning_factor: 10.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table6() {
        let c = EnergyCosts::default();
        assert_eq!(c.sram_access_j_per_byte, 1e-12);
        assert_eq!(c.l1_to_nvmm_j_per_byte, 11.839e-9);
        assert_eq!(c.bbpb_to_nvmm_j_per_byte, c.l1_to_nvmm_j_per_byte);
        assert_eq!(c.l2_to_nvmm_j_per_byte, 11.228e-9);
        assert_eq!(c.l3_to_nvmm_j_per_byte, c.l2_to_nvmm_j_per_byte);
    }

    #[test]
    fn dirty_fraction_and_bandwidth() {
        let c = EnergyCosts::default();
        assert!((c.dirty_fraction - 0.449).abs() < 1e-12);
        assert_eq!(c.nvmm_write_bw_per_channel, 2.3e9);
        assert!(c.provisioning_factor > 1.0);
    }
}

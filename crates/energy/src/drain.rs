//! The flush-on-fail drain model: energy and time (paper Tables VII/VIII).

use crate::costs::EnergyCosts;
use crate::platform::Platform;

/// Computes eADR vs BBB draining energy and time for one platform.
///
/// # Examples
///
/// ```
/// use bbb_energy::{DrainModel, EnergyCosts, Platform};
/// let m = DrainModel::new(Platform::mobile(), EnergyCosts::default());
/// // Paper Table VII: ~46.5 mJ for mobile eADR, ~145 µJ for BBB-32.
/// assert!((m.eadr_drain_energy_j(true) - 46.5e-3).abs() < 1.5e-3);
/// assert!((m.bbb_drain_energy_j(32) - 145e-6).abs() < 5e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DrainModel {
    platform: Platform,
    costs: EnergyCosts,
}

impl DrainModel {
    /// Builds the model from a platform and cost constants.
    #[must_use]
    pub fn new(platform: Platform, costs: EnergyCosts) -> Self {
        Self { platform, costs }
    }

    /// The modeled platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The cost constants.
    #[must_use]
    pub fn costs(&self) -> &EnergyCosts {
        &self.costs
    }

    /// Bytes eADR must drain. `dirty_only` uses the measured 44.9% dirty
    /// fraction (average-case, Table VII/VIII); `false` is the worst case
    /// the battery must be provisioned for (Table IX).
    #[must_use]
    pub fn eadr_drain_bytes(&self, dirty_only: bool) -> f64 {
        let f = if dirty_only {
            self.costs.dirty_fraction
        } else {
            1.0
        };
        self.platform.total_cache_bytes() as f64 * f
    }

    /// Bytes BBB must drain with `entries`-entry bbPBs, assuming the worst
    /// case of completely full buffers (the paper's assumption for BBB).
    #[must_use]
    pub fn bbb_drain_bytes(&self, entries: usize) -> f64 {
        self.platform.bbpb_bytes(entries) as f64
    }

    /// eADR draining energy in joules (access + per-level data movement).
    #[must_use]
    pub fn eadr_drain_energy_j(&self, dirty_only: bool) -> f64 {
        let f = if dirty_only {
            self.costs.dirty_fraction
        } else {
            1.0
        };
        let c = &self.costs;
        let p = &self.platform;
        let movement = p.l1_bytes as f64 * c.l1_to_nvmm_j_per_byte
            + p.l2_bytes as f64 * c.l2_to_nvmm_j_per_byte
            + p.l3_bytes as f64 * c.l3_to_nvmm_j_per_byte;
        let access = p.total_cache_bytes() as f64 * c.sram_access_j_per_byte;
        f * (movement + access)
    }

    /// BBB draining energy in joules for full `entries`-entry bbPBs.
    #[must_use]
    pub fn bbb_drain_energy_j(&self, entries: usize) -> f64 {
        let bytes = self.bbb_drain_bytes(entries);
        bytes * (self.costs.bbpb_to_nvmm_j_per_byte + self.costs.sram_access_j_per_byte)
    }

    /// eADR draining time in seconds: drain bytes over the platform's full
    /// NVMM write bandwidth (no competing traffic at a crash).
    #[must_use]
    pub fn eadr_drain_time_s(&self, dirty_only: bool) -> f64 {
        self.eadr_drain_bytes(dirty_only) / self.nvmm_bw()
    }

    /// BBB draining time in seconds.
    #[must_use]
    pub fn bbb_drain_time_s(&self, entries: usize) -> f64 {
        self.bbb_drain_bytes(entries) / self.nvmm_bw()
    }

    /// Energy the battery must be provisioned for (worst case: everything
    /// dirty / buffers full), including the provisioning factor.
    #[must_use]
    pub fn eadr_battery_energy_j(&self) -> f64 {
        self.eadr_drain_energy_j(false) * self.costs.provisioning_factor
    }

    /// BBB battery provisioning energy for `entries`-entry bbPBs.
    #[must_use]
    pub fn bbb_battery_energy_j(&self, entries: usize) -> f64 {
        self.bbb_drain_energy_j(entries) * self.costs.provisioning_factor
    }

    fn nvmm_bw(&self) -> f64 {
        self.platform.memory_channels as f64 * self.costs.nvmm_write_bw_per_channel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mobile() -> DrainModel {
        DrainModel::new(Platform::mobile(), EnergyCosts::default())
    }

    fn server() -> DrainModel {
        DrainModel::new(Platform::server(), EnergyCosts::default())
    }

    /// Relative-error helper.
    fn close(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected < tol
    }

    #[test]
    fn table7_mobile_energies() {
        let m = mobile();
        // Paper: eADR 46.5 mJ, BBB 145 µJ, ratio 320x.
        assert!(close(m.eadr_drain_energy_j(true), 46.5e-3, 0.02));
        assert!(close(m.bbb_drain_energy_j(32), 145e-6, 0.02));
        let ratio = m.eadr_drain_energy_j(true) / m.bbb_drain_energy_j(32);
        assert!(close(ratio, 320.0, 0.05), "ratio = {ratio}");
    }

    #[test]
    fn table7_server_energies() {
        let s = server();
        // Paper: eADR 550 mJ, BBB 775 µJ, ratio 709x.
        assert!(close(s.eadr_drain_energy_j(true), 550e-3, 0.02));
        assert!(close(s.bbb_drain_energy_j(32), 775e-6, 0.02));
        let ratio = s.eadr_drain_energy_j(true) / s.bbb_drain_energy_j(32);
        assert!(close(ratio, 709.0, 0.05), "ratio = {ratio}");
    }

    #[test]
    fn table8_drain_times() {
        let m = mobile();
        let s = server();
        // Paper: mobile 0.8 ms / 2.6 µs; server 1.8 ms / 2.4 µs.
        assert!(close(m.eadr_drain_time_s(true), 0.8e-3, 0.15));
        assert!(close(m.bbb_drain_time_s(32), 2.6e-6, 0.05));
        assert!(close(s.eadr_drain_time_s(true), 1.8e-3, 0.05));
        assert!(close(s.bbb_drain_time_s(32), 2.4e-6, 0.05));
    }

    #[test]
    fn worst_case_exceeds_average() {
        let m = mobile();
        assert!(m.eadr_drain_energy_j(false) > m.eadr_drain_energy_j(true));
        assert!(m.eadr_battery_energy_j() > m.eadr_drain_energy_j(false));
    }

    #[test]
    fn bbb_energy_scales_linearly_with_entries() {
        let m = mobile();
        let e32 = m.bbb_drain_energy_j(32);
        let e64 = m.bbb_drain_energy_j(64);
        assert!(close(e64 / e32, 2.0, 1e-9));
    }
}

/// Prices a *measured* drain set (from the simulator's crash-cost report)
/// rather than the provisioning worst case: energy and time to flush
/// `blocks` 64-byte blocks (plus `sb_bytes` of store-buffer payload) on
/// this platform.
///
/// This is the bridge between `bbb_core::CrashCost` and the paper's
/// energy model: run a workload, crash it, and price exactly what the
/// battery would have had to move at that instant.
///
/// # Examples
///
/// ```
/// use bbb_energy::{DrainModel, EnergyCosts, Platform};
/// let m = DrainModel::new(Platform::mobile(), EnergyCosts::default());
/// let (energy, time) = m.price_drain_set(32 * 6, 0);
/// // A full 32-entry bbPB per core == the Table VII BBB figure.
/// assert!((energy - m.bbb_drain_energy_j(32)).abs() < 1e-12);
/// assert!(time > 0.0);
/// ```
impl DrainModel {
    /// Returns `(energy_joules, time_seconds)` for draining `blocks`
    /// cache blocks and `sb_bytes` of store-buffer bytes.
    #[must_use]
    pub fn price_drain_set(&self, blocks: u64, sb_bytes: u64) -> (f64, f64) {
        let bytes = blocks as f64 * 64.0 + sb_bytes as f64;
        let energy =
            bytes * (self.costs.bbpb_to_nvmm_j_per_byte + self.costs.sram_access_j_per_byte);
        let time =
            bytes / (self.platform.memory_channels as f64 * self.costs.nvmm_write_bw_per_channel);
        (energy, time)
    }
}

#[cfg(test)]
mod price_tests {
    use super::*;

    #[test]
    fn pricing_scales_linearly_and_matches_table7_point() {
        let m = DrainModel::new(Platform::server(), EnergyCosts::default());
        let (e1, t1) = m.price_drain_set(100, 0);
        let (e2, t2) = m.price_drain_set(200, 0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // Full 32-entry bbPBs on all 32 cores == the Table VII BBB energy.
        let (e, _) = m.price_drain_set(32 * 32, 0);
        assert!((e - m.bbb_drain_energy_j(32)).abs() / e < 1e-9);
    }

    #[test]
    fn sb_bytes_add_to_the_bill() {
        let m = DrainModel::new(Platform::mobile(), EnergyCosts::default());
        let (e0, _) = m.price_drain_set(10, 0);
        let (e1, _) = m.price_drain_set(10, 64);
        assert!(e1 > e0);
        let (e_blk, _) = m.price_drain_set(11, 0);
        assert!((e1 - e_blk).abs() < 1e-15, "64 SB bytes == one block");
    }
}

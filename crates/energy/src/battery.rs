//! Battery sizing: volume and footprint (paper Tables IX/X).
//!
//! Two storage technologies from the paper's §IV-C: super-capacitors and
//! lithium thin-film, at 10⁻⁴ and 10⁻² Wh·cm⁻³ energy density. Volume is
//! active material only; the footprint comparison assumes a cubic battery
//! and reports its face area relative to the mobile core's 2.61 mm².

/// Battery technology options (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatteryTech {
    /// Carbon-based super-capacitors: 1e-4 Wh/cm³.
    SuperCap,
    /// Lithium thin-film: 1e-2 Wh/cm³.
    LiThin,
}

impl BatteryTech {
    /// Both technologies, SuperCap first (the paper's column order).
    pub const ALL: [BatteryTech; 2] = [BatteryTech::SuperCap, BatteryTech::LiThin];

    /// Energy density in Wh per cm³.
    #[must_use]
    pub fn energy_density_wh_per_cm3(self) -> f64 {
        match self {
            BatteryTech::SuperCap => 1e-4,
            BatteryTech::LiThin => 1e-2,
        }
    }

    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            BatteryTech::SuperCap => "SuperCap",
            BatteryTech::LiThin => "Li-thin",
        }
    }
}

impl std::fmt::Display for BatteryTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Active-material volume in mm³ for a battery storing `energy_j` joules.
///
/// # Examples
///
/// ```
/// use bbb_energy::{volume_mm3, BatteryTech};
/// // 1 Wh of SuperCap is 10^4 cm^3 = 10^7 mm^3.
/// let v = volume_mm3(3600.0, BatteryTech::SuperCap);
/// assert!((v - 1e7).abs() / 1e7 < 1e-9);
/// ```
#[must_use]
pub fn volume_mm3(energy_j: f64, tech: BatteryTech) -> f64 {
    let wh = energy_j / 3600.0;
    let cm3 = wh / tech.energy_density_wh_per_cm3();
    cm3 * 1000.0
}

/// Footprint area in mm² of a cubic battery of the given volume.
///
/// # Examples
///
/// ```
/// use bbb_energy::footprint_area_mm2;
/// assert!((footprint_area_mm2(8.0) - 4.0).abs() < 1e-9); // 2mm cube
/// ```
#[must_use]
pub fn footprint_area_mm2(volume_mm3: f64) -> f64 {
    volume_mm3.powf(2.0 / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DrainModel, EnergyCosts, Platform};

    fn close(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() / expected < tol
    }

    #[test]
    fn densities_differ_by_100x() {
        let s = BatteryTech::SuperCap.energy_density_wh_per_cm3();
        let l = BatteryTech::LiThin.energy_density_wh_per_cm3();
        assert!((l / s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn table9_mobile_volumes() {
        let m = DrainModel::new(Platform::mobile(), EnergyCosts::default());
        // Paper Table IX: eADR 2.9e3 mm³ SuperCap / 30 mm³ Li-thin;
        // BBB 4.1 / 0.04.
        let eadr = volume_mm3(m.eadr_battery_energy_j(), BatteryTech::SuperCap);
        assert!(close(eadr, 2.9e3, 0.05), "eadr supercap = {eadr}");
        let eadr_li = volume_mm3(m.eadr_battery_energy_j(), BatteryTech::LiThin);
        assert!(close(eadr_li, 30.0, 0.05), "eadr li = {eadr_li}");
        let bbb = volume_mm3(m.bbb_battery_energy_j(32), BatteryTech::SuperCap);
        assert!(close(bbb, 4.1, 0.05), "bbb supercap = {bbb}");
        let bbb_li = volume_mm3(m.bbb_battery_energy_j(32), BatteryTech::LiThin);
        assert!(close(bbb_li, 0.04, 0.06), "bbb li = {bbb_li}");
    }

    #[test]
    fn table9_server_volumes() {
        let s = DrainModel::new(Platform::server(), EnergyCosts::default());
        // Paper: eADR 34e3 mm³ SuperCap; BBB 21.6 / 0.21.
        let eadr = volume_mm3(s.eadr_battery_energy_j(), BatteryTech::SuperCap);
        assert!(close(eadr, 34e3, 0.05), "eadr supercap = {eadr}");
        let bbb = volume_mm3(s.bbb_battery_energy_j(32), BatteryTech::SuperCap);
        assert!(close(bbb, 21.6, 0.05), "bbb supercap = {bbb}");
        let bbb_li = volume_mm3(s.bbb_battery_energy_j(32), BatteryTech::LiThin);
        assert!(close(bbb_li, 0.21, 0.06), "bbb li = {bbb_li}");
    }

    #[test]
    fn table9_core_area_ratios() {
        let m = DrainModel::new(Platform::mobile(), EnergyCosts::default());
        let core = m.platform().core_area_mm2;
        // Paper: mobile eADR SuperCap ~77x the core area; BBB ~97.2%.
        let eadr_ratio =
            footprint_area_mm2(volume_mm3(m.eadr_battery_energy_j(), BatteryTech::SuperCap)) / core;
        assert!(close(eadr_ratio, 77.0, 0.05), "ratio = {eadr_ratio}");
        let bbb_ratio = footprint_area_mm2(volume_mm3(
            m.bbb_battery_energy_j(32),
            BatteryTech::SuperCap,
        )) / core;
        assert!(close(bbb_ratio, 0.972, 0.05), "ratio = {bbb_ratio}");
    }

    #[test]
    fn table10_battery_size_sweep() {
        // Paper Table X: mobile SuperCap 0.12 mm³ at 1 entry ... 129.3 at
        // 1024; server 0.7 ... 689.7.
        let m = DrainModel::new(Platform::mobile(), EnergyCosts::default());
        let s = DrainModel::new(Platform::server(), EnergyCosts::default());
        let v = |model: &DrainModel, e: usize| {
            volume_mm3(model.bbb_battery_energy_j(e), BatteryTech::SuperCap)
        };
        assert!(close(v(&m, 1), 0.128, 0.08));
        assert!(close(v(&m, 1024), 129.3, 0.05));
        assert!(close(v(&s, 1), 0.68, 0.05));
        assert!(close(v(&s, 1024), 689.7, 0.05));
        // Li-thin column: mobile 0.001 ... 1.3.
        let li = volume_mm3(m.bbb_battery_energy_j(1024), BatteryTech::LiThin);
        assert!(close(li, 1.3, 0.05));
    }

    #[test]
    fn volume_ratio_eadr_to_bbb_matches_paper_range() {
        // Paper: "battery volume for BBB is between 707-1574x smaller".
        for p in [Platform::mobile(), Platform::server()] {
            let m = DrainModel::new(p, EnergyCosts::default());
            let r = volume_mm3(m.eadr_battery_energy_j(), BatteryTech::SuperCap)
                / volume_mm3(m.bbb_battery_energy_j(32), BatteryTech::SuperCap);
            assert!(
                (600.0..=1700.0).contains(&r),
                "volume ratio {r} outside the paper's band"
            );
        }
    }
}

//! Draining-cost and battery-sizing models from the BBB paper (§IV-C, §V-A).
//!
//! The paper compares eADR (battery-back the whole cache hierarchy) against
//! BBB (battery-back only the bbPBs) on two platforms:
//!
//! * a **mobile-class** system (iPhone-11-like: 6 cores, 6×128 kB L1,
//!   8 MB L2, 2 memory channels), and
//! * a **server-class** system (Xeon-Platinum-9222-like: 32 cores,
//!   32×32 kB L1, 32×1 MB L2, 2×35.75 MB L3, 12 channels).
//!
//! Three quantities follow (Tables VII–X):
//!
//! 1. **draining energy** — bytes to move × per-byte data-movement cost
//!    (Table VI, derived by the paper from Pandiyan & Wu's measurements),
//! 2. **draining time** — bytes / (channels × per-channel NVMM write
//!    bandwidth, from the Optane characterization the paper cites),
//! 3. **battery volume and footprint** — energy / technology energy
//!    density (SuperCap or Li-thin), with a *provisioning factor* that we
//!    back-derive from the paper's own Table IX arithmetic (≈10.15×, i.e.
//!    batteries are over-provisioned an order of magnitude above the raw
//!    drain energy; applied identically to eADR and BBB so every reported
//!    ratio is preserved).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod costs;
pub mod drain;
pub mod platform;

pub use battery::{footprint_area_mm2, volume_mm3, BatteryTech};
pub use costs::EnergyCosts;
pub use drain::DrainModel;
pub use platform::Platform;

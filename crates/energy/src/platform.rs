//! The two drain-cost evaluation platforms (paper Table V).

/// A platform description for the drain-cost model.
///
/// # Examples
///
/// ```
/// use bbb_energy::Platform;
/// let m = Platform::mobile();
/// assert_eq!(m.cores, 6);
/// assert_eq!(m.memory_channels, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Core count.
    pub cores: usize,
    /// Total L1 capacity across cores, in bytes.
    pub l1_bytes: u64,
    /// Total L2 capacity, in bytes.
    pub l2_bytes: u64,
    /// Total L3 capacity, in bytes (0 when absent).
    pub l3_bytes: u64,
    /// Memory channels.
    pub memory_channels: usize,
    /// Footprint of one core in mm² (the paper uses the mobile core's
    /// 2.61 mm² as the comparison yardstick for both platforms).
    pub core_area_mm2: f64,
}

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;

impl Platform {
    /// The mobile-class system (iPhone-11-like, paper Table V): 6 cores,
    /// 6 × 128 kB L1, one 8 MB L2, no L3, 2 memory channels.
    #[must_use]
    pub fn mobile() -> Self {
        Self {
            name: "Mobile Class",
            cores: 6,
            l1_bytes: 6 * 128 * KIB,
            l2_bytes: 8 * MIB,
            l3_bytes: 0,
            memory_channels: 2,
            core_area_mm2: 2.61,
        }
    }

    /// The server-class system (Xeon-Platinum-9222-like, paper Table V):
    /// 32 cores, 32 × 32 kB L1, 32 × 1 MB L2, 2 × 35.75 MB L3, 12
    /// channels.
    #[must_use]
    pub fn server() -> Self {
        Self {
            name: "Server Class",
            cores: 32,
            l1_bytes: 32 * 32 * KIB,
            l2_bytes: 32 * MIB,
            l3_bytes: 2 * 35 * MIB + 2 * 768 * KIB, // 2 x 35.75 MiB
            memory_channels: 12,
            core_area_mm2: 2.61,
        }
    }

    /// A server-class system scaled to `cores`: per-core L1/L2 capacities
    /// match [`Platform::server`] (32 kB L1, 1 MB L2 per core), the L3
    /// and channel count scale proportionally from the 32-core baseline
    /// (minimum one channel). The design-space explorer prices batteries
    /// for swept core counts with this.
    #[must_use]
    pub fn server_scaled(cores: usize) -> Self {
        let base = Self::server();
        let scale = cores as f64 / base.cores as f64;
        Self {
            name: "Server Class (scaled)",
            cores,
            l1_bytes: cores as u64 * 32 * KIB,
            l2_bytes: cores as u64 * MIB,
            l3_bytes: (base.l3_bytes as f64 * scale) as u64,
            memory_channels: ((base.memory_channels as f64 * scale) as usize).max(1),
            core_area_mm2: base.core_area_mm2,
        }
    }

    /// Total cache capacity (the eADR battery's responsibility).
    #[must_use]
    pub fn total_cache_bytes(&self) -> u64 {
        self.l1_bytes + self.l2_bytes + self.l3_bytes
    }

    /// Total bbPB capacity for `entries` 64-byte entries per core (the BBB
    /// battery's responsibility).
    #[must_use]
    pub fn bbpb_bytes(&self, entries: usize) -> u64 {
        self.cores as u64 * entries as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_matches_table5() {
        let m = Platform::mobile();
        assert_eq!(m.l1_bytes, 786_432);
        assert_eq!(m.l2_bytes, 8 * MIB);
        assert_eq!(m.l3_bytes, 0);
        // Paper: total ~8.75 MB.
        assert_eq!(m.total_cache_bytes(), 8 * MIB + 768 * KIB);
    }

    #[test]
    fn server_matches_table5() {
        let s = Platform::server();
        assert_eq!(s.cores, 32);
        assert_eq!(s.l1_bytes, MIB);
        assert_eq!(s.l2_bytes, 32 * MIB);
        assert_eq!(s.l3_bytes, 71 * MIB + 512 * KIB); // 71.5 MiB
        assert_eq!(s.memory_channels, 12);
        // Paper: total ~107 MB (104.5 MiB).
        assert_eq!(s.total_cache_bytes(), 104 * MIB + 512 * KIB);
    }

    #[test]
    fn server_scaled_matches_server_at_32_cores() {
        let s = Platform::server();
        let x = Platform::server_scaled(32);
        assert_eq!(x.cores, s.cores);
        assert_eq!(x.l1_bytes, s.l1_bytes);
        assert_eq!(x.l2_bytes, s.l2_bytes);
        assert_eq!(x.l3_bytes, s.l3_bytes);
        assert_eq!(x.memory_channels, s.memory_channels);
        // Scaling is proportional and never drops below one channel.
        let small = Platform::server_scaled(2);
        assert_eq!(small.memory_channels, 1);
        let big = Platform::server_scaled(64);
        assert_eq!(big.l1_bytes, 2 * s.l1_bytes);
        assert_eq!(big.memory_channels, 2 * s.memory_channels);
    }

    #[test]
    fn bbpb_capacity_scales_with_entries_and_cores() {
        let m = Platform::mobile();
        assert_eq!(m.bbpb_bytes(32), 6 * 32 * 64);
        let s = Platform::server();
        assert_eq!(s.bbpb_bytes(32), 32 * 32 * 64);
        assert_eq!(s.bbpb_bytes(1024), 32 * 1024 * 64);
    }
}

//! Post-crash NVMM images.
//!
//! When the simulator injects a power failure, whatever the active
//! persistence domain drained to media becomes an [`NvmImage`]: the exact
//! byte contents recovery code would see on reboot. Workload-specific
//! checkers (in `bbb-workloads`) validate structure invariants against it.

use bbb_sim::{Addr, BlockAddr, BLOCK_BYTES};

use crate::backing::{ByteStore, PAGE_BYTES};

/// An immutable snapshot of NVMM media contents after a crash.
///
/// # Examples
///
/// ```
/// use bbb_mem::{ByteStore, NvmImage};
/// let mut media = ByteStore::new();
/// media.write_u64(0x100, 7);
/// let image = NvmImage::from_store(media);
/// assert_eq!(image.read_u64(0x100), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvmImage {
    store: ByteStore,
}

impl NvmImage {
    /// Wraps a snapshot of media contents.
    #[must_use]
    pub fn from_store(store: ByteStore) -> Self {
        Self { store }
    }

    /// Reads raw bytes.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        self.store.read(addr, buf);
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.store.read_u64(addr)
    }

    /// Reads one cache block.
    #[must_use]
    pub fn read_block(&self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        self.store.read_block(block)
    }

    /// Borrows the underlying store (for bulk comparisons in tests).
    #[must_use]
    pub fn as_store(&self) -> &ByteStore {
        &self.store
    }

    /// A page-memoizing reader over this image.
    ///
    /// Recovery checkers walk structures field by field — `node`,
    /// `node+8`, `node+16` — so consecutive reads overwhelmingly land on
    /// the page of the previous one. The reader resolves the page-table
    /// lookup once per page *run* instead of once per read, which is
    /// where a crash-point sweep spends most of its wall time.
    #[must_use]
    pub fn reader(&self) -> ImageReader<'_> {
        ImageReader {
            store: &self.store,
            page_base: u64::MAX,
            page: None,
        }
    }

    /// Unwraps into the underlying store.
    #[must_use]
    pub fn into_store(self) -> ByteStore {
        self.store
    }
}

impl From<ByteStore> for NvmImage {
    fn from(store: ByteStore) -> Self {
        Self::from_store(store)
    }
}

/// A cursor over an [`NvmImage`] that memoizes the last page it touched.
///
/// Reads give byte-for-byte the same answers as [`NvmImage::read`]; only
/// the page-table lookups are amortized. Cheap to construct — checkers
/// may keep one per traversal.
#[derive(Debug, Clone)]
pub struct ImageReader<'a> {
    store: &'a ByteStore,
    /// Base address of the cached page (`u64::MAX` = nothing cached).
    page_base: u64,
    /// The cached page's bytes; `None` for a cached *absent* (all-zero)
    /// page, which is as common as a present one in sparse heaps.
    page: Option<&'a [u8; PAGE_BYTES]>,
}

impl ImageReader<'_> {
    #[inline]
    fn load_page(&mut self, addr: Addr) {
        let base = addr & !(PAGE_BYTES as u64 - 1);
        if base != self.page_base {
            self.page_base = base;
            self.page = self.store.page_for(addr).map(|arc| &**arc);
        }
    }

    /// Reads raw bytes (must not straddle more pages than the store can
    /// serve; straddling reads fall back to the store's path).
    #[inline]
    pub fn read(&mut self, addr: Addr, buf: &mut [u8]) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + buf.len() <= PAGE_BYTES {
            self.load_page(addr);
            match self.page {
                Some(p) => buf.copy_from_slice(&p[off..off + buf.len()]),
                None => buf.fill(0),
            }
        } else {
            self.store.read(addr, buf);
        }
    }

    /// Reads a little-endian `u64` at `addr` (need not be aligned).
    #[inline]
    #[must_use]
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Reads one cache block.
    #[inline]
    #[must_use]
    pub fn read_block(&mut self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        let mut buf = [0u8; BLOCK_BYTES];
        self.read(block.base(), &mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_reads_match_store() {
        let mut s = ByteStore::new();
        s.write(0x40, &[1, 2, 3]);
        let img: NvmImage = s.clone().into();
        let mut buf = [0u8; 3];
        img.read(0x40, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(img.read_block(BlockAddr::containing(0x40))[..3], [1, 2, 3]);
        assert_eq!(img.as_store(), &s);
        assert_eq!(img.into_store(), s);
    }
}

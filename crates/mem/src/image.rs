//! Post-crash NVMM images.
//!
//! When the simulator injects a power failure, whatever the active
//! persistence domain drained to media becomes an [`NvmImage`]: the exact
//! byte contents recovery code would see on reboot. Workload-specific
//! checkers (in `bbb-workloads`) validate structure invariants against it.

use bbb_sim::{Addr, BlockAddr, BLOCK_BYTES};

use crate::backing::ByteStore;

/// An immutable snapshot of NVMM media contents after a crash.
///
/// # Examples
///
/// ```
/// use bbb_mem::{ByteStore, NvmImage};
/// let mut media = ByteStore::new();
/// media.write_u64(0x100, 7);
/// let image = NvmImage::from_store(media);
/// assert_eq!(image.read_u64(0x100), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvmImage {
    store: ByteStore,
}

impl NvmImage {
    /// Wraps a snapshot of media contents.
    #[must_use]
    pub fn from_store(store: ByteStore) -> Self {
        Self { store }
    }

    /// Reads raw bytes.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        self.store.read(addr, buf);
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.store.read_u64(addr)
    }

    /// Reads one cache block.
    #[must_use]
    pub fn read_block(&self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        self.store.read_block(block)
    }

    /// Borrows the underlying store (for bulk comparisons in tests).
    #[must_use]
    pub fn as_store(&self) -> &ByteStore {
        &self.store
    }

    /// Unwraps into the underlying store.
    #[must_use]
    pub fn into_store(self) -> ByteStore {
        self.store
    }
}

impl From<ByteStore> for NvmImage {
    fn from(store: ByteStore) -> Self {
        Self::from_store(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_reads_match_store() {
        let mut s = ByteStore::new();
        s.write(0x40, &[1, 2, 3]);
        let img: NvmImage = s.clone().into();
        let mut buf = [0u8; 3];
        img.read(0x40, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(img.read_block(BlockAddr::containing(0x40))[..3], [1, 2, 3]);
        assert_eq!(img.as_store(), &s);
        assert_eq!(img.into_store(), s);
    }
}

//! NVMM write-endurance accounting.
//!
//! NVM cells wear out (the paper cites 10⁸–10¹² write endurance depending on
//! technology), so the *number of writes to NVMM* is a first-class metric of
//! the evaluation (Fig. 7(b)). [`EnduranceTracker`] counts media writes per
//! block so benchmarks can report totals, unique blocks, and the hottest
//! block.

use std::collections::HashMap;

use bbb_sim::{BlockAddr, Stats};

/// Per-block media write counts.
///
/// # Examples
///
/// ```
/// use bbb_mem::EnduranceTracker;
/// use bbb_sim::BlockAddr;
///
/// let mut t = EnduranceTracker::new();
/// let b = BlockAddr::from_index(1);
/// t.record(b);
/// t.record(b);
/// assert_eq!(t.total_writes(), 2);
/// assert_eq!(t.writes_to(b), 2);
/// assert_eq!(t.max_per_block(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnduranceTracker {
    per_block: HashMap<BlockAddr, u64>,
    total: u64,
}

impl EnduranceTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one media write to `block`.
    pub fn record(&mut self, block: BlockAddr) {
        *self.per_block.entry(block).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total media writes observed.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.total
    }

    /// Writes observed to a specific block.
    #[must_use]
    pub fn writes_to(&self, block: BlockAddr) -> u64 {
        self.per_block.get(&block).copied().unwrap_or(0)
    }

    /// Number of distinct blocks ever written.
    #[must_use]
    pub fn unique_blocks(&self) -> u64 {
        self.per_block.len() as u64
    }

    /// The highest per-block write count (0 if nothing was written). A proxy
    /// for worst-case wear.
    #[must_use]
    pub fn max_per_block(&self) -> u64 {
        self.per_block.values().copied().max().unwrap_or(0)
    }

    /// Exports counters under the `nvmm.` prefix.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set("nvmm.writes", self.total);
        s.set("nvmm.unique_blocks", self.unique_blocks());
        s.set("nvmm.max_writes_per_block", self.max_per_block());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_reports_zero() {
        let t = EnduranceTracker::new();
        assert_eq!(t.total_writes(), 0);
        assert_eq!(t.unique_blocks(), 0);
        assert_eq!(t.max_per_block(), 0);
        assert_eq!(t.writes_to(BlockAddr::from_index(5)), 0);
    }

    #[test]
    fn counts_accumulate_per_block() {
        let mut t = EnduranceTracker::new();
        let a = BlockAddr::from_index(1);
        let b = BlockAddr::from_index(2);
        t.record(a);
        t.record(a);
        t.record(b);
        assert_eq!(t.total_writes(), 3);
        assert_eq!(t.unique_blocks(), 2);
        assert_eq!(t.writes_to(a), 2);
        assert_eq!(t.writes_to(b), 1);
        assert_eq!(t.max_per_block(), 2);
    }

    #[test]
    fn stats_export() {
        let mut t = EnduranceTracker::new();
        t.record(BlockAddr::from_index(9));
        let s = t.stats();
        assert_eq!(s.get("nvmm.writes"), 1);
        assert_eq!(s.get("nvmm.unique_blocks"), 1);
        assert_eq!(s.get("nvmm.max_writes_per_block"), 1);
    }
}

//! Memory substrate for the BBB reproduction.
//!
//! Models the hybrid main memory of the paper's machine (Fig. 4): a DRAM
//! controller and an NVMM controller, each with its own channels, plus the
//! NVMM controller's **write-pending queue (WPQ)** — the ADR persistence
//! domain of the baseline system. A write to NVMM becomes *persistent* the
//! cycle it is accepted into the WPQ; the battery guarantees the WPQ drains
//! to media on power failure.
//!
//! Timing is resolved analytically: submitting a request returns its
//! completion cycle given current channel occupancy, so the cycle-stepped
//! system simulator never has to tick the memory system.
//!
//! # Examples
//!
//! ```
//! use bbb_mem::NvmmController;
//! use bbb_sim::{BlockAddr, MemTiming};
//!
//! let mut nvmm = NvmmController::new(MemTiming::default());
//! let block = BlockAddr::from_index(7);
//! let outcome = nvmm.write(0, block, [0xAB; 64]);
//! assert_eq!(outcome.persist, 0); // WPQ had space: persistent immediately
//! let image = nvmm.crash_image();
//! assert_eq!(image.read_block(block)[0], 0xAB);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backing;
pub mod controller;
pub mod endurance;
pub mod image;
pub mod sched;
pub mod wpq;

pub use backing::{ByteStore, PAGE_BYTES};
pub use controller::{DramController, NvmmController, WriteOutcome};
pub use endurance::EnduranceTracker;
pub use image::{ImageReader, NvmImage};
pub use sched::ChannelScheduler;
pub use wpq::WritePendingQueue;

//! The NVMM controller's write-pending queue (WPQ).
//!
//! Under ADR the WPQ is the point of persistency: a write is durable the
//! cycle it is accepted, because a capacitor guarantees the queue drains to
//! media on power failure (paper §I footnote 1, §VI "eADR"). The WPQ also
//! coalesces writes to a block that is still queued, which matters for the
//! NVMM write-endurance comparison.
//!
//! Timing is analytic: each accepted entry is immediately assigned a media
//! start/completion window on the controller's channels; the entry occupies
//! a WPQ slot until its media write completes.

use bbb_sim::{BlockAddr, Counter, Cycle, FxHashMap, Stats, BLOCK_BYTES};

use crate::sched::ChannelScheduler;

#[derive(Debug, Clone)]
struct Entry {
    start: Cycle,
    completion: Cycle,
}

/// Outcome of offering a write to the WPQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WpqAccept {
    /// Cycle the write was accepted — the point of persistency under ADR.
    pub persist: Cycle,
    /// Cycle the media write completes (equals `persist` for coalesced
    /// writes, which piggyback on the queued entry).
    pub media_completion: Cycle,
    /// True if the write merged into an already-queued entry for the same
    /// block instead of consuming a new media write.
    pub coalesced: bool,
}

/// A fixed-capacity write-pending queue with ADR semantics.
///
/// # Examples
///
/// ```
/// use bbb_mem::{ChannelScheduler, WritePendingQueue};
/// use bbb_sim::BlockAddr;
///
/// let mut wpq = WritePendingQueue::new(8);
/// let mut media = ChannelScheduler::new(2);
/// let accept = wpq.offer(0, BlockAddr::from_index(1), &mut media, 1000);
/// assert_eq!(accept.persist, 0); // durable on acceptance (ADR)
/// ```
#[derive(Debug, Clone)]
pub struct WritePendingQueue {
    capacity: usize,
    entries: FxHashMap<BlockAddr, Entry>,
    media_writes: Counter,
    coalesced: Counter,
    backpressure_events: Counter,
}

impl WritePendingQueue {
    /// Creates a WPQ holding up to `capacity` block entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ capacity must be positive");
        Self {
            capacity,
            entries: FxHashMap::default(),
            media_writes: Counter::new(),
            coalesced: Counter::new(),
            backpressure_events: Counter::new(),
        }
    }

    /// Capacity in block entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries still occupying the queue at `now` (media write not yet
    /// complete).
    #[must_use]
    pub fn occupancy(&self, now: Cycle) -> usize {
        self.entries.values().filter(|e| e.completion > now).count()
    }

    /// Offers a block write arriving at `now`. `media` schedules the drain
    /// to the NVM media with `write_latency` per block.
    ///
    /// If the block is already queued and its media write has not started,
    /// the write coalesces (no new media write). If the queue is full, the
    /// write is accepted only when the earliest entry completes
    /// (backpressure) — the returned `persist` reflects that stall.
    pub fn offer(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        media: &mut ChannelScheduler,
        write_latency: Cycle,
    ) -> WpqAccept {
        self.purge(now);
        let mut accept = now;
        if self.coalescable(block, now).is_none() && self.occupancy(now) >= self.capacity {
            self.backpressure_events.inc();
            accept = self
                .entries
                .values()
                .map(|e| e.completion)
                .filter(|&c| c > now)
                .min()
                .unwrap_or(now);
            self.purge(accept);
        }
        // The coalesce decision is made at the cycle the write is actually
        // accepted. The check used to run at `now` only, so a write that
        // stalled on a full queue was never re-checked against a same-block
        // entry still queued at `accept` — double-counting it as a fresh
        // media write.
        if let Some(completion) = self.coalescable(block, accept) {
            self.coalesced.inc();
            return WpqAccept {
                persist: accept,
                media_completion: completion,
                coalesced: true,
            };
        }
        let (start, completion) = media.schedule(accept, write_latency);
        self.entries.insert(block, Entry { start, completion });
        self.media_writes.inc();
        WpqAccept {
            persist: accept,
            media_completion: completion,
            coalesced: false,
        }
    }

    /// The completion cycle of a queued same-block entry a write arriving
    /// at `t` can merge into — the entry's media write must not have
    /// started, because an in-flight write cannot absorb new data.
    fn coalescable(&self, block: BlockAddr, t: Cycle) -> Option<Cycle> {
        self.entries
            .get(&block)
            .filter(|e| e.start > t)
            .map(|e| e.completion)
    }

    /// True if `block` still has a queued entry at `now` (read forwarding).
    #[must_use]
    pub fn holds(&self, block: BlockAddr, now: Cycle) -> bool {
        self.entries.get(&block).is_some_and(|e| e.completion > now)
    }

    /// Drops entries whose media writes have completed.
    fn purge(&mut self, now: Cycle) {
        self.entries.retain(|_, e| e.completion > now);
    }

    /// Bytes that the flush-on-fail battery must drain if power is lost at
    /// `now` — every still-queued entry.
    #[must_use]
    pub fn crash_drain_bytes(&self, now: Cycle) -> u64 {
        self.occupancy(now) as u64 * BLOCK_BYTES as u64
    }

    /// Backpressure stalls so far (allocation-free event probe).
    #[must_use]
    pub fn backpressure_count(&self) -> u64 {
        self.backpressure_events.get()
    }

    /// Exports counters under the `wpq.` prefix.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set("wpq.media_writes", self.media_writes.get());
        s.set("wpq.coalesced", self.coalesced.get());
        s.set("wpq.backpressure_events", self.backpressure_events.get());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wpq_and_media() -> (WritePendingQueue, ChannelScheduler) {
        (WritePendingQueue::new(4), ChannelScheduler::new(1))
    }

    const WLAT: Cycle = 1000;

    #[test]
    fn accept_is_immediate_with_space() {
        let (mut q, mut m) = wpq_and_media();
        let a = q.offer(5, BlockAddr::from_index(1), &mut m, WLAT);
        assert_eq!(a.persist, 5);
        assert_eq!(a.media_completion, 5 + WLAT);
        assert!(!a.coalesced);
        assert_eq!(q.occupancy(5), 1);
    }

    #[test]
    fn coalesces_queued_block() {
        let (mut q, mut m) = wpq_and_media();
        // First write starts immediately; a write to a *different* block
        // queues behind it on the single channel, so its start is in the
        // future and a third write to that block can coalesce.
        q.offer(0, BlockAddr::from_index(1), &mut m, WLAT);
        let b = q.offer(0, BlockAddr::from_index(2), &mut m, WLAT);
        assert_eq!(b.persist, 0);
        let c = q.offer(10, BlockAddr::from_index(2), &mut m, WLAT);
        assert!(c.coalesced);
        assert_eq!(c.media_completion, b.media_completion);
        assert_eq!(q.stats().get("wpq.media_writes"), 2);
        assert_eq!(q.stats().get("wpq.coalesced"), 1);
    }

    #[test]
    fn started_entry_does_not_coalesce() {
        let (mut q, mut m) = wpq_and_media();
        q.offer(0, BlockAddr::from_index(1), &mut m, WLAT); // starts at 0
        let again = q.offer(10, BlockAddr::from_index(1), &mut m, WLAT);
        assert!(
            !again.coalesced,
            "in-flight media write cannot absorb new data"
        );
        assert_eq!(q.stats().get("wpq.media_writes"), 2);
    }

    #[test]
    fn backpressure_when_full() {
        let (mut q, mut m) = wpq_and_media();
        for i in 0..4 {
            q.offer(0, BlockAddr::from_index(i), &mut m, WLAT);
        }
        assert_eq!(q.occupancy(0), 4);
        let a = q.offer(0, BlockAddr::from_index(99), &mut m, WLAT);
        // Earliest completion on the single channel is WLAT.
        assert_eq!(a.persist, WLAT);
        assert_eq!(q.stats().get("wpq.backpressure_events"), 1);
    }

    #[test]
    fn full_queue_merges_same_block_write_without_backpressure() {
        // Regression for the backpressure coalesce gap: a mergeable write
        // must never stall on a full queue, pay a backpressure event, or
        // count as a fresh media write.
        let mut q = WritePendingQueue::new(2);
        let mut m = ChannelScheduler::new(1);
        q.offer(0, BlockAddr::from_index(1), &mut m, WLAT); // starts at 0
        q.offer(0, BlockAddr::from_index(2), &mut m, WLAT); // starts at WLAT
        assert_eq!(q.occupancy(5), 2, "queue full");
        let a = q.offer(5, BlockAddr::from_index(2), &mut m, WLAT);
        assert!(a.coalesced);
        assert_eq!(a.persist, 5);
        assert_eq!(q.stats().get("wpq.backpressure_events"), 0);
        assert_eq!(q.stats().get("wpq.media_writes"), 2);
    }

    #[test]
    fn coalesce_check_runs_at_accept_after_backpressure() {
        // A same-block entry whose media write is in flight cannot absorb
        // the new write, so the write backpressures; the stall ends exactly
        // when that entry completes, the accept-time re-check finds it
        // purged, and the write correctly counts as fresh.
        let mut q = WritePendingQueue::new(2);
        let mut m = ChannelScheduler::new(1);
        q.offer(0, BlockAddr::from_index(1), &mut m, WLAT); // starts at 0
        q.offer(0, BlockAddr::from_index(2), &mut m, WLAT); // starts at WLAT
        let a = q.offer(5, BlockAddr::from_index(1), &mut m, WLAT);
        assert!(!a.coalesced, "in-flight media write cannot absorb new data");
        assert_eq!(a.persist, WLAT, "stalled until block 1's write completed");
        assert_eq!(q.stats().get("wpq.backpressure_events"), 1);
        assert_eq!(q.stats().get("wpq.media_writes"), 3);
    }

    #[test]
    fn coalesce_window_is_start_time_not_completion() {
        let mut q = WritePendingQueue::new(4);
        let mut m = ChannelScheduler::new(1);
        q.offer(0, BlockAddr::from_index(1), &mut m, WLAT); // starts at 0
        q.offer(0, BlockAddr::from_index(2), &mut m, WLAT); // starts at WLAT
        assert_eq!(q.coalescable(BlockAddr::from_index(1), 5), None);
        assert_eq!(q.coalescable(BlockAddr::from_index(2), 5), Some(2 * WLAT));
        // At the entry's own start cycle the window has closed.
        assert_eq!(q.coalescable(BlockAddr::from_index(2), WLAT), None);
    }

    #[test]
    fn crash_with_queue_at_capacity_covers_every_entry() {
        // Satellite coverage: crash while occupancy == capacity, right
        // after a backpressure stall. Every still-queued entry is inside
        // the ADR domain and must be charged to the flush-on-fail battery.
        let (mut q, mut m) = wpq_and_media();
        for i in 0..4 {
            q.offer(0, BlockAddr::from_index(i), &mut m, WLAT);
        }
        let a = q.offer(0, BlockAddr::from_index(99), &mut m, WLAT);
        assert_eq!(q.stats().get("wpq.backpressure_events"), 1);
        assert_eq!(q.occupancy(0), 4);
        assert_eq!(q.crash_drain_bytes(0), 4 * 64);
        // At the stalled accept cycle the new entry occupies the freed
        // slot: still at capacity, still fully covered.
        assert_eq!(q.occupancy(a.persist), 4);
        assert_eq!(q.crash_drain_bytes(a.persist), 4 * 64);
    }

    #[test]
    fn occupancy_drains_over_time() {
        let (mut q, mut m) = wpq_and_media();
        for i in 0..3 {
            q.offer(0, BlockAddr::from_index(i), &mut m, WLAT);
        }
        assert_eq!(q.occupancy(0), 3);
        assert_eq!(q.occupancy(WLAT), 2);
        assert_eq!(q.occupancy(3 * WLAT), 0);
        assert_eq!(q.crash_drain_bytes(WLAT), 2 * 64);
    }

    #[test]
    fn holds_reflects_queue_contents() {
        let (mut q, mut m) = wpq_and_media();
        let b = BlockAddr::from_index(3);
        q.offer(0, b, &mut m, WLAT);
        assert!(q.holds(b, 10));
        assert!(!q.holds(b, WLAT + 1));
        assert!(!q.holds(BlockAddr::from_index(4), 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = WritePendingQueue::new(0);
    }
}

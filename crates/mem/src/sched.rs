//! Channel occupancy scheduling.
//!
//! Memory devices service one request per channel at a time. Instead of
//! ticking queues, [`ChannelScheduler`] assigns each submitted request a
//! start time on the least-loaded channel and returns its completion cycle,
//! which is exact for FCFS service.

use bbb_sim::Cycle;

/// Assigns requests to the earliest-available of `n` identical channels.
///
/// # Examples
///
/// ```
/// use bbb_mem::ChannelScheduler;
/// let mut s = ChannelScheduler::new(2);
/// assert_eq!(s.schedule(0, 100), (0, 100));   // channel 0
/// assert_eq!(s.schedule(0, 100), (0, 100));   // channel 1
/// assert_eq!(s.schedule(0, 100), (100, 200)); // queues behind channel 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelScheduler {
    free_at: Vec<Cycle>,
}

impl ChannelScheduler {
    /// Creates a scheduler over `channels` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        Self {
            free_at: vec![0; channels],
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.free_at.len()
    }

    /// Schedules a request arriving at `now` that occupies a channel for
    /// `latency` cycles. Returns `(start, completion)`.
    pub fn schedule(&mut self, now: Cycle, latency: Cycle) -> (Cycle, Cycle) {
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one channel");
        let start = now.max(self.free_at[idx]);
        let completion = start + latency;
        self.free_at[idx] = completion;
        (start, completion)
    }

    /// The earliest cycle at which any channel is free, given time `now`.
    #[must_use]
    pub fn earliest_free(&self, now: Cycle) -> Cycle {
        self.free_at
            .iter()
            .copied()
            .min()
            .expect("at least one channel")
            .max(now)
    }

    /// Number of channels busy at `now`.
    #[must_use]
    pub fn busy_channels(&self, now: Cycle) -> usize {
        self.free_at.iter().filter(|&&t| t > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_channels_overlap() {
        let mut s = ChannelScheduler::new(4);
        for _ in 0..4 {
            assert_eq!(s.schedule(10, 50), (10, 60));
        }
        // Fifth request waits for a free channel.
        assert_eq!(s.schedule(10, 50), (60, 110));
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut s = ChannelScheduler::new(1);
        s.schedule(0, 100);
        // After the channel frees, a later request starts at arrival.
        assert_eq!(s.schedule(500, 10), (500, 510));
    }

    #[test]
    fn earliest_free_tracks_load() {
        let mut s = ChannelScheduler::new(2);
        assert_eq!(s.earliest_free(0), 0);
        s.schedule(0, 100);
        assert_eq!(s.earliest_free(0), 0); // second channel idle
        s.schedule(0, 30);
        assert_eq!(s.earliest_free(0), 30);
        assert_eq!(s.earliest_free(1000), 1000);
    }

    #[test]
    fn busy_count() {
        let mut s = ChannelScheduler::new(3);
        s.schedule(0, 10);
        s.schedule(0, 20);
        assert_eq!(s.busy_channels(5), 2);
        assert_eq!(s.busy_channels(15), 1);
        assert_eq!(s.busy_channels(25), 0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = ChannelScheduler::new(0);
    }
}

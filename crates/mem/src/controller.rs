//! DRAM and NVMM memory controllers.
//!
//! Each controller owns its media contents ([`ByteStore`]), a
//! [`ChannelScheduler`] modeling per-channel bandwidth, and latency
//! parameters from the paper's Table III. The NVMM controller additionally
//! owns the [`WritePendingQueue`] (the ADR persistence domain) and an
//! [`EnduranceTracker`].

use bbb_sim::{BlockAddr, Counter, Cycle, MemTiming, Stats, TraceEvent, TraceLog, BLOCK_BYTES};

use crate::backing::ByteStore;
use crate::endurance::EnduranceTracker;
use crate::image::NvmImage;
use crate::sched::ChannelScheduler;
use crate::wpq::WritePendingQueue;

/// Result of submitting a write to a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Cycle the write becomes durable. For NVMM this is WPQ acceptance
    /// (ADR); for DRAM durability is meaningless and this equals completion.
    pub persist: Cycle,
    /// Cycle the media write finishes and the channel frees.
    pub completion: Cycle,
}

/// The volatile DRAM controller.
///
/// # Examples
///
/// ```
/// use bbb_mem::DramController;
/// use bbb_sim::{BlockAddr, MemTiming};
///
/// let mut dram = DramController::new(MemTiming::default());
/// let block = BlockAddr::from_index(3);
/// dram.write(0, block, [1; 64]);
/// let (done, data) = dram.read(0, block);
/// assert_eq!(data[0], 1);
/// assert!(done > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DramController {
    access_latency: Cycle,
    channels: ChannelScheduler,
    media: ByteStore,
    reads: Counter,
    writes: Counter,
}

impl DramController {
    /// Creates a controller with the given timing; DRAM uses two channels.
    #[must_use]
    pub fn new(timing: MemTiming) -> Self {
        Self {
            access_latency: timing.dram_access,
            channels: ChannelScheduler::new(2),
            media: ByteStore::new(),
            reads: Counter::new(),
            writes: Counter::new(),
        }
    }

    /// Reads a block; returns `(completion_cycle, data)`.
    pub fn read(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
        self.reads.inc();
        let (_, completion) = self.channels.schedule(now, self.access_latency);
        (completion, self.media.read_block(block))
    }

    /// Writes a block; returns the channel completion cycle.
    pub fn write(&mut self, now: Cycle, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> Cycle {
        self.writes.inc();
        let (_, completion) = self.channels.schedule(now, self.access_latency);
        self.media.write_block(block, &data);
        completion
    }

    /// Pre-loads media contents without consuming simulated time (warm
    /// start before measurement begins).
    pub fn load(&mut self, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        self.media.write_block(block, data);
    }

    /// Exports counters under the `dram.` prefix.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = Stats::new();
        s.set("dram.reads", self.reads.get());
        s.set("dram.writes", self.writes.get());
        s
    }
}

/// The NVMM controller: media, channels, the battery-backed WPQ, and
/// endurance accounting.
///
/// # Examples
///
/// ```
/// use bbb_mem::NvmmController;
/// use bbb_sim::{BlockAddr, MemTiming};
///
/// let mut nvmm = NvmmController::new(MemTiming::default());
/// let block = BlockAddr::from_index(10);
/// let w = nvmm.write(0, block, [9; 64]);
/// assert_eq!(w.persist, 0);          // WPQ acceptance = durable
/// assert!(w.completion >= 1000);     // media write takes 500 ns
/// assert_eq!(nvmm.endurance().total_writes(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NvmmController {
    read_latency: Cycle,
    write_latency: Cycle,
    /// Demand reads get their own channel slots: memory controllers
    /// prioritize reads over background WPQ drains, so queued writes do
    /// not inflate read latency (they only backpressure the WPQ).
    read_channels: ChannelScheduler,
    write_channels: ChannelScheduler,
    wpq: WritePendingQueue,
    media: ByteStore,
    endurance: EnduranceTracker,
    reads: Counter,
    wpq_read_hits: Counter,
    trace: TraceLog,
}

impl NvmmController {
    /// Creates a controller from the configured timing.
    #[must_use]
    pub fn new(timing: MemTiming) -> Self {
        Self {
            read_latency: timing.nvmm_read,
            write_latency: timing.nvmm_write,
            read_channels: ChannelScheduler::new(timing.nvmm_channels),
            write_channels: ChannelScheduler::new(timing.nvmm_channels),
            wpq: WritePendingQueue::new(timing.wpq_entries),
            media: ByteStore::new(),
            endurance: EnduranceTracker::new(),
            reads: Counter::new(),
            wpq_read_hits: Counter::new(),
            trace: TraceLog::default(),
        }
    }

    /// Enables or disables [`TraceEvent::NvmmWrite`] recording.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Drains the recorded persist-point events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Records a power failure in the controller's own log, so that
    /// accepts recorded *before* it stay before it in the merged stream
    /// even when their persist cycles tie with the crash cycle (the
    /// cross-log merge is only cycle-granular; the checker relies on
    /// crash-drain writes, and only those, following the crash marker).
    pub fn note_crash(&mut self, now: Cycle, battery_ok: bool) {
        self.trace.push(TraceEvent::Crash {
            cycle: now,
            battery_ok,
        });
    }

    /// Reads a block; returns `(completion_cycle, data)`. Reads that hit a
    /// still-queued WPQ entry are forwarded at a fraction of media latency.
    pub fn read(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
        self.reads.inc();
        if self.wpq.holds(block, now) {
            self.wpq_read_hits.inc();
            // Forwarding from the controller's SRAM queue: cheap and does
            // not occupy a media channel.
            return (now + 8, self.media.read_block(block));
        }
        let (_, completion) = self.read_channels.schedule(now, self.read_latency);
        (completion, self.media.read_block(block))
    }

    /// Writes a block through the WPQ. The returned [`WriteOutcome::persist`]
    /// is the ADR point of persistency (WPQ acceptance, possibly delayed by
    /// backpressure when the queue is full).
    pub fn write(&mut self, now: Cycle, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> WriteOutcome {
        let accept = self
            .wpq
            .offer(now, block, &mut self.write_channels, self.write_latency);
        self.trace.push(TraceEvent::NvmmWrite {
            block,
            cycle: accept.persist,
            coalesced: accept.coalesced,
        });
        // Media bytes reflect the WPQ contents immediately: the queue is
        // inside the persistence domain, so for crash purposes queued data
        // and media data are equivalent.
        self.media.write_block(block, &data);
        if !accept.coalesced {
            self.endurance.record(block);
        }
        WriteOutcome {
            persist: accept.persist,
            completion: accept.media_completion,
        }
    }

    /// Pre-loads media contents without consuming simulated time.
    pub fn load(&mut self, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        self.media.write_block(block, data);
    }

    /// Snapshot of the persistent image at a crash: media plus the WPQ,
    /// which the ADR capacitor drains (they are already merged internally).
    #[must_use]
    pub fn crash_image(&self) -> NvmImage {
        NvmImage::from_store(self.media.clone())
    }

    /// A copy-on-write snapshot of raw media contents. O(resident pages)
    /// pointer bumps; pages are shared with the live controller until
    /// either side writes them. Crash imaging overlays persist-domain
    /// contents onto this without disturbing the running system.
    #[must_use]
    pub fn media_snapshot(&self) -> ByteStore {
        self.media.clone()
    }

    /// Materialized 4 KiB media pages (snapshot-cost accounting).
    #[must_use]
    pub fn media_resident_pages(&self) -> usize {
        self.media.resident_pages()
    }

    /// Monotone media mutation counter (see [`ByteStore::version`]): if two
    /// probes of the same controller observe equal versions, no media write
    /// happened in between, so crash images taken at both points are
    /// byte-identical as far as media (and the merged-in WPQ) goes.
    #[must_use]
    pub fn media_version(&self) -> u64 {
        self.media.version()
    }

    /// Media pages deep-copied by copy-on-write so far (writes that hit a
    /// page still shared with a snapshot).
    #[must_use]
    pub fn media_cow_page_copies(&self) -> u64 {
        self.media.cow_page_copies()
    }

    /// Reads current media contents of one block without timing or
    /// counters (read-modify-write support for store-granular drains).
    #[must_use]
    pub fn media_block(&self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        self.media.read_block(block)
    }

    /// Bytes the ADR capacitor must drain if power fails at `now`.
    #[must_use]
    pub fn wpq_crash_bytes(&self, now: Cycle) -> u64 {
        self.wpq.crash_drain_bytes(now)
    }

    /// WPQ occupancy at `now`, for stats and tests.
    #[must_use]
    pub fn wpq_occupancy(&self, now: Cycle) -> usize {
        self.wpq.occupancy(now)
    }

    /// Backpressure stalls the WPQ has suffered so far (cheap event probe
    /// for crash-point planners; also in [`NvmmController::stats`]).
    #[must_use]
    pub fn wpq_backpressure_events(&self) -> u64 {
        self.wpq.backpressure_count()
    }

    /// Endurance (per-block media write) accounting.
    #[must_use]
    pub fn endurance(&self) -> &EnduranceTracker {
        &self.endurance
    }

    /// Exports counters under `nvmm.` and `wpq.` prefixes.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut s = self.endurance.stats();
        s.merge(&self.wpq.stats());
        s.set("nvmm.reads", self.reads.get());
        s.set("nvmm.wpq_read_hits", self.wpq_read_hits.get());
        s.set("nvmm.media_pages", self.media.resident_pages() as u64);
        s.set("nvmm.cow_page_copies", self.media.cow_page_copies());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> MemTiming {
        MemTiming::default()
    }

    #[test]
    fn dram_read_write_latency() {
        let mut d = DramController::new(timing());
        let b = BlockAddr::from_index(1);
        let done = d.write(0, b, [7; 64]);
        assert_eq!(done, 110);
        let (done, data) = d.read(0, b);
        assert_eq!(done, 110); // second channel
        assert_eq!(data, [7; 64]);
        assert_eq!(d.stats().get("dram.reads"), 1);
        assert_eq!(d.stats().get("dram.writes"), 1);
    }

    #[test]
    fn dram_load_is_instant() {
        let mut d = DramController::new(timing());
        let b = BlockAddr::from_index(2);
        d.load(b, &[3; 64]);
        let (_, data) = d.read(0, b);
        assert_eq!(data, [3; 64]);
        assert_eq!(d.stats().get("dram.writes"), 0);
    }

    #[test]
    fn nvmm_write_persists_at_wpq_accept() {
        let mut n = NvmmController::new(timing());
        let b = BlockAddr::from_index(5);
        let w = n.write(100, b, [1; 64]);
        assert_eq!(w.persist, 100);
        assert_eq!(w.completion, 1100);
        assert_eq!(n.endurance().total_writes(), 1);
    }

    #[test]
    fn nvmm_read_latency_and_data() {
        let mut n = NvmmController::new(timing());
        let b = BlockAddr::from_index(6);
        n.load(b, &[4; 64]);
        let (done, data) = n.read(0, b);
        assert_eq!(done, 300);
        assert_eq!(data, [4; 64]);
    }

    #[test]
    fn wpq_forwarding_serves_reads_fast() {
        let mut n = NvmmController::new(timing());
        let b = BlockAddr::from_index(7);
        n.write(0, b, [9; 64]);
        let (done, data) = n.read(10, b); // entry still queued
        assert_eq!(done, 18);
        assert_eq!(data, [9; 64]);
        assert_eq!(n.stats().get("nvmm.wpq_read_hits"), 1);
    }

    #[test]
    fn crash_image_contains_wpq_contents() {
        let mut n = NvmmController::new(timing());
        let b = BlockAddr::from_index(8);
        n.write(0, b, [0x5A; 64]);
        // Crash immediately: media write hasn't completed, but the WPQ is
        // battery backed, so the image must contain the data.
        let img = n.crash_image();
        assert_eq!(img.read_block(b), [0x5A; 64]);
        assert_eq!(n.wpq_crash_bytes(0), 64);
        assert_eq!(n.wpq_occupancy(0), 1);
    }

    #[test]
    fn wpq_drains_reduce_crash_bytes() {
        let mut n = NvmmController::new(timing());
        n.write(0, BlockAddr::from_index(1), [1; 64]);
        assert!(n.wpq_crash_bytes(0) > 0);
        assert_eq!(n.wpq_crash_bytes(10_000), 0);
    }

    #[test]
    fn endurance_skips_coalesced_writes() {
        // One write channel so queued writes can coalesce.
        let mut n = NvmmController::new(MemTiming {
            nvmm_channels: 1,
            ..timing()
        });
        // Saturate channels so later writes queue and can coalesce.
        for i in 0..8 {
            n.write(0, BlockAddr::from_index(i), [i as u8; 64]);
        }
        let before = n.endurance().total_writes();
        // Block 7 queued last; still pending => coalesce.
        n.write(1, BlockAddr::from_index(7), [0xFF; 64]);
        assert_eq!(n.endurance().total_writes(), before);
        assert_eq!(n.stats().get("wpq.coalesced"), 1);
        // Latest data still visible in crash image.
        assert_eq!(
            n.crash_image().read_block(BlockAddr::from_index(7)),
            [0xFF; 64]
        );
    }
}

impl bbb_sim::MemoryPort for DramController {
    fn read_block(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
        DramController::read(self, now, block)
    }

    fn write_block(&mut self, now: Cycle, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> Cycle {
        DramController::write(self, now, block, data)
    }

    fn rmw_block(&mut self, now: Cycle, block: BlockAddr, offset: usize, bytes: &[u8]) -> Cycle {
        assert!(offset + bytes.len() <= BLOCK_BYTES, "RMW exceeds block");
        let mut data = self.media.read_block(block);
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
        DramController::write(self, now, block, data)
    }
}

impl bbb_sim::MemoryPort for NvmmController {
    fn read_block(&mut self, now: Cycle, block: BlockAddr) -> (Cycle, [u8; BLOCK_BYTES]) {
        NvmmController::read(self, now, block)
    }

    fn write_block(&mut self, now: Cycle, block: BlockAddr, data: [u8; BLOCK_BYTES]) -> Cycle {
        NvmmController::write(self, now, block, data).persist
    }

    fn rmw_block(&mut self, now: Cycle, block: BlockAddr, offset: usize, bytes: &[u8]) -> Cycle {
        assert!(offset + bytes.len() <= BLOCK_BYTES, "RMW exceeds block");
        let mut data = self.media.read_block(block);
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
        NvmmController::write(self, now, block, data).persist
    }
}

#[cfg(test)]
mod port_tests {
    use super::*;
    use bbb_sim::MemoryPort;

    #[test]
    fn nvmm_port_write_returns_persist_point() {
        let mut n = NvmmController::new(MemTiming::default());
        let b = BlockAddr::from_index(1);
        let persist = MemoryPort::write_block(&mut n, 7, b, [1; 64]);
        assert_eq!(persist, 7, "WPQ accept, not media completion");
    }

    #[test]
    fn nvmm_port_rmw_patches_bytes_with_one_write() {
        let mut n = NvmmController::new(MemTiming::default());
        let b = BlockAddr::from_index(2);
        n.load(b, &[0xAA; 64]);
        n.rmw_block(0, b, 8, &[1, 2, 3]);
        assert_eq!(n.endurance().total_writes(), 1);
        assert_eq!(n.stats().get("nvmm.reads"), 0, "media patched directly");
        let img = n.crash_image();
        let blk = img.read_block(b);
        assert_eq!(&blk[8..11], &[1, 2, 3]);
        assert_eq!(blk[0], 0xAA);
    }

    #[test]
    fn dram_port_round_trip() {
        let mut d = DramController::new(MemTiming::default());
        let b = BlockAddr::from_index(3);
        MemoryPort::write_block(&mut d, 0, b, [5; 64]);
        let (_, data) = MemoryPort::read_block(&mut d, 0, b);
        assert_eq!(data, [5; 64]);
        d.rmw_block(0, b, 0, &[9]);
        let (_, data) = MemoryPort::read_block(&mut d, 0, b);
        assert_eq!(data[0], 9);
        assert_eq!(data[1], 5);
    }
}

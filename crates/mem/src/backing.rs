//! Sparse functional byte storage.
//!
//! [`ByteStore`] backs both the memory devices (media contents) and the
//! architectural memory workloads execute against. It is a sparse map of
//! 4 KiB pages, so an 8 GB address space costs memory only for pages
//! actually touched.

use std::collections::HashMap;

use bbb_sim::{Addr, BlockAddr, BLOCK_BYTES};

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// A sparse, byte-addressable memory with zero-fill semantics: reading an
/// address that was never written returns zero.
///
/// # Examples
///
/// ```
/// use bbb_mem::ByteStore;
/// let mut m = ByteStore::new();
/// m.write_u64(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x2000), 0); // untouched => zero
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ByteStore {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl ByteStore {
    /// Creates an empty (all-zero) store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB pages materialized so far.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        let mut pos = 0;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let page = a >> PAGE_SHIFT;
            let off = (a as usize) & (PAGE_BYTES - 1);
            let n = (PAGE_BYTES - off).min(buf.len() - pos);
            match self.pages.get(&page) {
                Some(p) => buf[pos..pos + n].copy_from_slice(&p[off..off + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    /// Writes `data` starting at `addr`, materializing pages as needed.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            let a = addr + pos as u64;
            let page = a >> PAGE_SHIFT;
            let off = (a as usize) & (PAGE_BYTES - 1);
            let n = (PAGE_BYTES - off).min(data.len() - pos);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_BYTES]));
            p[off..off + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    /// Reads one 64-byte cache block.
    #[must_use]
    pub fn read_block(&self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        let mut buf = [0u8; BLOCK_BYTES];
        self.read(block.base(), &mut buf);
        buf
    }

    /// Writes one 64-byte cache block.
    pub fn write_block(&mut self, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        self.write(block.base(), data);
    }

    /// Reads a little-endian `u64` at `addr` (need not be aligned).
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Iterates `(page_base_address, page_bytes)` over materialized pages,
    /// in ascending address order (bulk mirroring into device media).
    pub fn iter_pages(&self) -> impl Iterator<Item = (Addr, &[u8])> {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(move |k| {
            let page = &self.pages[&k];
            ((k << PAGE_SHIFT), &page[..])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = ByteStore::new();
        let mut buf = [0xFFu8; 32];
        m.read(0x1234, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = ByteStore::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(0x7FF8, &data); // straddles a page boundary
        let mut out = vec![0u8; 256];
        m.read(0x7FF8, &mut out);
        assert_eq!(out, data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn block_round_trip() {
        let mut m = ByteStore::new();
        let block = BlockAddr::containing(0x4040);
        let mut data = [0u8; BLOCK_BYTES];
        data[0] = 0xAA;
        data[63] = 0x55;
        m.write_block(block, &data);
        assert_eq!(m.read_block(block), data);
    }

    #[test]
    fn u64_round_trip_unaligned() {
        let mut m = ByteStore::new();
        m.write_u64(0x1003, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x1003), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn partial_overwrite_preserves_rest() {
        let mut m = ByteStore::new();
        m.write(0x100, &[1, 2, 3, 4]);
        m.write(0x102, &[9]);
        let mut out = [0u8; 4];
        m.read(0x100, &mut out);
        assert_eq!(out, [1, 2, 9, 4]);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut m = ByteStore::new();
        m.write_u64(0, 1);
        let snap = m.clone();
        m.write_u64(0, 2);
        assert_eq!(snap.read_u64(0), 1);
        assert_eq!(m.read_u64(0), 2);
    }
}

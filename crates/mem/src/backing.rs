//! Sparse functional byte storage with copy-on-write snapshots.
//!
//! [`ByteStore`] backs both the memory devices (media contents) and the
//! architectural memory workloads execute against. It is a sparse map of
//! 4 KiB pages, so an 8 GB address space costs memory only for pages
//! actually touched. Pages are reference-counted ([`Arc`]): cloning a
//! store is O(resident pages) pointer bumps, and a clone shares every
//! page with its parent until one of them writes — the property the
//! crash-point sweep's snapshot path is built on.

use std::collections::hash_map::Entry;
use std::sync::Arc;

use bbb_sim::{Addr, BlockAddr, FxHashMap, BLOCK_BYTES};

const PAGE_SHIFT: u32 = 12;
/// Bytes per copy-on-write page (4 KiB).
pub const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

pub(crate) type Page = [u8; PAGE_BYTES];

/// A sparse, byte-addressable memory with zero-fill semantics: reading an
/// address that was never written returns zero.
///
/// Cloning is cheap (copy-on-write): the clone shares every materialized
/// page with the original, and a page is deep-copied only when either
/// side writes it while it is still shared. [`ByteStore::cow_page_copies`]
/// counts those forced copies; [`ByteStore::shared_pages`] reports how
/// many resident pages are currently shared with at least one snapshot.
///
/// # Examples
///
/// ```
/// use bbb_mem::ByteStore;
/// let mut m = ByteStore::new();
/// m.write_u64(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_u64(0x2000), 0); // untouched => zero
///
/// let snap = m.clone();              // O(pages) pointer bumps
/// m.write_u64(0x1000, 1);            // breaks sharing for that page only
/// assert_eq!(snap.read_u64(0x1000), 0xDEAD_BEEF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ByteStore {
    /// Sparse page table. Keyed by the fast unkeyed [`bbb_sim::FxHasher`]:
    /// this lookup sits under every simulated memory access *and* every
    /// recovery-checker read, and never reaches observable output by
    /// iteration order.
    pages: FxHashMap<u64, Arc<Page>>,
    /// Pages deep-copied because a write hit a page still shared with a
    /// snapshot. Clones inherit their ancestor's count at fork time.
    cow_page_copies: u64,
    /// Monotone mutation counter: bumped on every write call. Two equal
    /// versions of the *same* store lineage guarantee the contents did
    /// not change in between — the cheap "has anything happened" check
    /// the crash-point sweep's image memoization relies on. Like the COW
    /// counter, it is bookkeeping, not observable contents.
    version: u64,
}

impl PartialEq for ByteStore {
    /// Content equality: same materialized pages with the same bytes.
    /// The COW bookkeeping counter is not observable state.
    fn eq(&self, other: &Self) -> bool {
        self.pages == other.pages
    }
}

impl Eq for ByteStore {}

impl ByteStore {
    /// Creates an empty (all-zero) store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of 4 KiB pages materialized so far.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of resident pages currently shared with at least one other
    /// snapshot (clone) of this store.
    #[must_use]
    pub fn shared_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    /// Pages deep-copied by copy-on-write over this store's history
    /// (a write landing on a page still shared with a snapshot).
    #[must_use]
    pub fn cow_page_copies(&self) -> u64 {
        self.cow_page_copies
    }

    /// Monotone mutation counter: increments on every write. Within one
    /// store lineage, an unchanged version proves unchanged contents
    /// (the converse does not hold — rewriting identical bytes bumps it).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    #[inline]
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        let off = (addr as usize) & (PAGE_BYTES - 1);
        if off + buf.len() <= PAGE_BYTES {
            // Single-page access — the overwhelmingly common shape (u64
            // field reads, 64-byte block transfers): one table lookup,
            // no loop.
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => buf.copy_from_slice(&p[off..off + buf.len()]),
                None => buf.fill(0),
            }
            return;
        }
        self.read_multi(addr, buf);
    }

    /// The page-straddling slow path of [`ByteStore::read`].
    fn read_multi(&self, addr: Addr, buf: &mut [u8]) {
        let mut pos = 0;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let page = a >> PAGE_SHIFT;
            let off = (a as usize) & (PAGE_BYTES - 1);
            let n = (PAGE_BYTES - off).min(buf.len() - pos);
            match self.pages.get(&page) {
                Some(p) => buf[pos..pos + n].copy_from_slice(&p[off..off + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    /// Writes `data` starting at `addr`, materializing pages as needed.
    /// A write to a page shared with a snapshot copies the page first
    /// (copy-on-write); a page-aligned full-page write never pays for a
    /// zero fill or a stale copy — the page is built straight from the
    /// source bytes.
    pub fn write(&mut self, addr: Addr, data: &[u8]) {
        self.version += 1;
        let mut pos = 0;
        while pos < data.len() {
            let a = addr + pos as u64;
            let page = a >> PAGE_SHIFT;
            let off = (a as usize) & (PAGE_BYTES - 1);
            let n = (PAGE_BYTES - off).min(data.len() - pos);
            let src = &data[pos..pos + n];
            match self.pages.entry(page) {
                Entry::Occupied(mut e) => {
                    let slot = e.get_mut();
                    if n == PAGE_BYTES {
                        // Full overwrite: nothing of the old page survives,
                        // so never copy it — write in place when unshared,
                        // otherwise swap in a fresh page built from `src`.
                        match Arc::get_mut(slot) {
                            Some(p) => p.copy_from_slice(src),
                            None => *slot = Arc::new(page_from(src)),
                        }
                    } else {
                        if Arc::get_mut(slot).is_none() {
                            self.cow_page_copies += 1;
                        }
                        Arc::make_mut(slot)[off..off + n].copy_from_slice(src);
                    }
                }
                Entry::Vacant(v) => {
                    if n == PAGE_BYTES {
                        v.insert(Arc::new(page_from(src)));
                    } else {
                        let mut p = Arc::new([0u8; PAGE_BYTES]);
                        Arc::get_mut(&mut p).expect("freshly allocated")[off..off + n]
                            .copy_from_slice(src);
                        v.insert(p);
                    }
                }
            }
            pos += n;
        }
    }

    /// Reads one 64-byte cache block.
    #[must_use]
    pub fn read_block(&self, block: BlockAddr) -> [u8; BLOCK_BYTES] {
        let mut buf = [0u8; BLOCK_BYTES];
        self.read(block.base(), &mut buf);
        buf
    }

    /// Writes one 64-byte cache block.
    pub fn write_block(&mut self, block: BlockAddr, data: &[u8; BLOCK_BYTES]) {
        self.write(block.base(), data);
    }

    /// Reads a little-endian `u64` at `addr` (need not be aligned).
    #[inline]
    #[must_use]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// The shared page holding `addr`, if materialized (page-granular
    /// access for [`crate::image::ImageReader`]'s memoized fast path).
    #[inline]
    pub(crate) fn page_for(&self, addr: Addr) -> Option<&Arc<Page>> {
        self.pages.get(&(addr >> PAGE_SHIFT))
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Iterates `(page_base_address, page_bytes)` over materialized pages,
    /// in ascending address order (bulk mirroring into device media).
    pub fn iter_pages(&self) -> impl Iterator<Item = (Addr, &[u8])> {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(move |k| {
            let page = &self.pages[&k];
            ((k << PAGE_SHIFT), &page[..])
        })
    }
}

/// Builds a page directly from a page-sized slice (no zero fill).
fn page_from(src: &[u8]) -> Page {
    src.try_into().expect("page-sized slice")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = ByteStore::new();
        let mut buf = [0xFFu8; 32];
        m.read(0x1234, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = ByteStore::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(0x7FF8, &data); // straddles a page boundary
        let mut out = vec![0u8; 256];
        m.read(0x7FF8, &mut out);
        assert_eq!(out, data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn block_round_trip() {
        let mut m = ByteStore::new();
        let block = BlockAddr::containing(0x4040);
        let mut data = [0u8; BLOCK_BYTES];
        data[0] = 0xAA;
        data[63] = 0x55;
        m.write_block(block, &data);
        assert_eq!(m.read_block(block), data);
    }

    #[test]
    fn u64_round_trip_unaligned() {
        let mut m = ByteStore::new();
        m.write_u64(0x1003, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x1003), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn partial_overwrite_preserves_rest() {
        let mut m = ByteStore::new();
        m.write(0x100, &[1, 2, 3, 4]);
        m.write(0x102, &[9]);
        let mut out = [0u8; 4];
        m.read(0x100, &mut out);
        assert_eq!(out, [1, 2, 9, 4]);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut m = ByteStore::new();
        m.write_u64(0, 1);
        let snap = m.clone();
        m.write_u64(0, 2);
        assert_eq!(snap.read_u64(0), 1);
        assert_eq!(m.read_u64(0), 2);
        // And the other direction: a write through the snapshot must not
        // leak back into the parent.
        let mut snap2 = m.clone();
        snap2.write_u64(0, 3);
        assert_eq!(m.read_u64(0), 2);
        assert_eq!(snap2.read_u64(0), 3);
    }

    #[test]
    fn clone_shares_pages_until_written() {
        let mut m = ByteStore::new();
        m.write_u64(0x0000, 1);
        m.write_u64(0x1000, 2);
        m.write_u64(0x2000, 3);
        assert_eq!(m.shared_pages(), 0);

        let snap = m.clone();
        assert_eq!(m.shared_pages(), 3, "all pages shared right after clone");
        assert_eq!(snap.shared_pages(), 3);
        assert_eq!(m.cow_page_copies(), 0);

        // A partial write to one shared page copies exactly that page.
        m.write_u64(0x1000, 99);
        assert_eq!(m.cow_page_copies(), 1);
        assert_eq!(m.shared_pages(), 2);
        assert_eq!(snap.read_u64(0x1000), 2, "snapshot unaffected");

        // Dropping the snapshot un-shares everything without copies.
        drop(snap);
        assert_eq!(m.shared_pages(), 0);
        assert_eq!(m.cow_page_copies(), 1);
    }

    #[test]
    fn divergent_clones_are_fully_independent() {
        let mut a = ByteStore::new();
        for i in 0..8u64 {
            a.write_u64(i * 0x1000, i + 1);
        }
        let mut b = a.clone();
        for i in 0..8u64 {
            b.write_u64(i * 0x1000, 100 + i);
        }
        for i in 0..8u64 {
            assert_eq!(a.read_u64(i * 0x1000), i + 1);
            assert_eq!(b.read_u64(i * 0x1000), 100 + i);
        }
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn full_page_write_skips_zero_fill_and_cow_copy() {
        let page = vec![0xABu8; PAGE_BYTES];
        // Fresh page: built straight from the source.
        let mut m = ByteStore::new();
        m.write(0x3000, &page);
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.read_u64(0x3000), u64::from_le_bytes([0xAB; 8]));

        // Full overwrite of a *shared* page replaces it without counting
        // (or performing) a copy-on-write of the stale contents.
        let snap = m.clone();
        let page2 = vec![0xCDu8; PAGE_BYTES];
        m.write(0x3000, &page2);
        assert_eq!(m.cow_page_copies(), 0);
        assert_eq!(m.read_u64(0x3000), u64::from_le_bytes([0xCD; 8]));
        assert_eq!(snap.read_u64(0x3000), u64::from_le_bytes([0xAB; 8]));

        // Unaligned page-sized writes still go through the partial path.
        let mut n = ByteStore::new();
        n.write(0x3008, &page);
        assert_eq!(n.resident_pages(), 2);
        assert_eq!(n.read_u64(0x3008), u64::from_le_bytes([0xAB; 8]));
        assert_eq!(n.read_u64(0x3000), 0);
    }

    #[test]
    fn equality_ignores_cow_bookkeeping() {
        let mut a = ByteStore::new();
        a.write_u64(0x10, 7);
        let mut b = a.clone();
        let snap = b.clone();
        b.write_u64(0x10, 8); // forces a COW copy in b
        b.write_u64(0x10, 7); // restore contents
        drop(snap);
        assert!(b.cow_page_copies() > a.cow_page_copies());
        assert_eq!(a, b, "equal contents, different COW history");
    }
}

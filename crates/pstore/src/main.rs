//! `bbb-pstore`: a file-backed persistent log on the pstore ring.
//!
//! ```text
//! bbb-pstore <ring-file> append <message>...   # one committed grant per message
//! bbb-pstore <ring-file> dump                  # recover and print the committed window
//! bbb-pstore <ring-file> trim <n>              # release the oldest n records
//! ```
//!
//! The file engine runs the ring under [`Discipline::FlushFence`]: every
//! commit is two `sync_data` barriers (data, then watermark), so a
//! committed message survives `kill -9` and reboot. The exact same ring
//! code runs flush-free on the simulator's battery-backed machine — that
//! is the paper's point, demonstrated end to end.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bbb_pstore::{
    backing_len, is_formatted, recover, Discipline, FileBacking, GrantError, RingReader, RingWriter,
};

const CAPACITY: u64 = 4096;

fn usage() -> ExitCode {
    eprintln!("usage: bbb-pstore <ring-file> append <message>... | dump | trim <n>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, cmd, rest) = match args.split_first() {
        Some((p, more)) => match more.split_first() {
            Some((c, rest)) => (PathBuf::from(p), c.clone(), rest.to_vec()),
            None => return usage(),
        },
        None => return usage(),
    };
    match run(&path, &cmd, &rest) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bbb-pstore: {e}");
            ExitCode::FAILURE
        }
    }
}

fn open_or_create(path: &Path) -> Result<(FileBacking, RingWriter), String> {
    let mut backing = FileBacking::open(path, backing_len(CAPACITY))?;
    // A file killed mid-format reads back unformatted (the magic is
    // stamped last) and is safe to format again; attach anything else.
    let writer = if is_formatted(&mut backing)? {
        RingWriter::attach(&mut backing, Discipline::FlushFence)?
    } else {
        RingWriter::create(&mut backing, CAPACITY, Discipline::FlushFence)?
    };
    Ok((backing, writer))
}

fn run(path: &Path, cmd: &str, rest: &[String]) -> Result<(), String> {
    match cmd {
        "append" => {
            if rest.is_empty() {
                return Err("append: no messages given".into());
            }
            let (mut backing, mut writer) = open_or_create(path)?;
            for msg in rest {
                let mut bytes = msg.clone().into_bytes();
                bytes.resize(bytes.len().div_ceil(8).max(1) * 8, 0);
                let mut grant = match writer.grant_write(&mut backing, bytes.len() as u64) {
                    Ok(g) => g,
                    Err(GrantError::WouldBlock) => {
                        return Err(format!(
                            "ring full before '{msg}': run `bbb-pstore {} trim <n>`",
                            path.display()
                        ))
                    }
                    Err(e) => return Err(e.to_string()),
                };
                grant.payload.copy_from_slice(&bytes);
                let seq = grant.seq;
                writer.commit(&mut backing, &grant)?;
                println!("committed seq {seq} ({} bytes)", bytes.len());
            }
            Ok(())
        }
        "dump" => {
            let mut backing = FileBacking::open(path, backing_len(CAPACITY))?;
            let snap = recover(&mut backing)?;
            println!(
                "ring: capacity {} B, committed_off {}, committed_seq {}, window {} record(s)",
                snap.capacity,
                snap.committed_off,
                snap.committed_seq,
                snap.records.len()
            );
            for r in &snap.records {
                let text: String = r
                    .payload
                    .iter()
                    .take_while(|&&b| b != 0)
                    .map(|&b| {
                        if b.is_ascii_graphic() || b == b' ' {
                            b as char
                        } else {
                            '.'
                        }
                    })
                    .collect();
                println!(
                    "  seq {:>4}  off {:>6}  {:>3} B  {text}",
                    r.seq,
                    r.off,
                    r.payload.len()
                );
            }
            Ok(())
        }
        "trim" => {
            let n: usize = rest
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or("trim: give a record count")?;
            let mut backing = FileBacking::open(path, backing_len(CAPACITY))?;
            let mut reader = RingReader::attach(&mut backing, Discipline::FlushFence)?;
            let recs = reader.grant_read(&mut backing)?;
            let take = n.min(recs.len());
            let bytes: u64 = recs.iter().take(take).map(|r| r.span).sum();
            reader.release(&mut backing, bytes)?;
            println!("released {take} record(s), {bytes} bytes");
            Ok(())
        }
        _ => Err(format!("unknown command '{cmd}'")),
    }
}

//! `bbb-pstore`: a single-producer/single-consumer persistent ring buffer
//! programmed the way the BBB paper says persistent structures should be —
//! plain stores, no flushes, no fences — yet portable to machines that do
//! need them.
//!
//! The API is bbqueue's two-ended grant shape:
//!
//! - producer: [`RingWriter::grant_write`]`(len)` → fill → [`RingWriter::commit`]
//! - consumer: [`RingReader::grant_read`]`()` → consume → [`RingReader::release`]
//!
//! On a battery-backed machine ([`Discipline::BufferBacked`]) every one of
//! those steps compiles down to loads and stores: the point of visibility
//! *is* the point of persistency, so the moment the commit watermark store
//! commits, the grant is durable. On ADR/strict-PMEM machines
//! ([`Discipline::FlushFence`]) the very same ring code routes its stores
//! through a FliT-style per-object flush-tracking shim ([`FlushShim`]):
//! the shim remembers which 64-byte blocks each grant dirtied and, at the
//! two ordering points the protocol actually needs (data before watermark,
//! watermark before reuse), emits the minimal flush + fence sequence — and
//! nothing anywhere else. [`Discipline::EpochOrdered`] keeps the dirty
//! tracking but emits only the ordering fence, the discipline Buffered
//! Epoch Persistency wants.
//!
//! Storage is abstracted behind [`PBacking`], with two engines:
//! [`MemBacking`] (plain memory, also the shape the simulator backing in
//! `bbb-workloads` mirrors so crashfuzz can sweep every store boundary of
//! this protocol) and [`FileBacking`] (a real file via `std::fs`, durable
//! across process restarts — see the `bbb-pstore` CLI).
//!
//! Crash recovery is [`recover`]: it re-derives the committed window from
//! the header watermarks and validates framing, checksums, and sequence
//! continuity, so a reader observes a *prefix of committed grants* after
//! any crash — never a torn or reordered one. The proof sketch lives in
//! DESIGN.md §pstore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backing;
mod recover;
mod ring;
mod shim;

pub use backing::{FileBacking, MemBacking, PBacking};
pub use recover::{is_formatted, recover, Record, RingSnapshot};
pub use ring::{
    backing_len, RingReader, RingWriter, WriteGrant, COMMIT_SEQ_OFF, COMMIT_WATERMARK_OFF,
    DATA_OFF, MAGIC_OFF, MAX_PAYLOAD_BYTES, PSTORE_MAGIC, READ_MARK_OFF, READ_PUB_OFF,
};
pub use shim::{Discipline, FlushShim, BLOCK_BYTES};

/// Errors a grant request can report without touching storage state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrantError {
    /// Not enough released space in the ring for `len` payload bytes (plus
    /// framing); retry after the consumer releases.
    WouldBlock,
    /// The payload can never fit (`len` exceeds [`MAX_PAYLOAD_BYTES`] or
    /// is not a positive multiple of 8).
    TooLarge,
    /// The backing store failed.
    Backing(String),
}

impl std::fmt::Display for GrantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrantError::WouldBlock => write!(f, "ring full: no released space for the grant"),
            GrantError::TooLarge => write!(f, "payload length invalid (8-aligned, 8..=MAX)"),
            GrantError::Backing(e) => write!(f, "backing error: {e}"),
        }
    }
}

//! Storage engines behind the ring: one trait, interchangeable backings.
//!
//! Ring code addresses storage by *ring-relative byte offset*; a backing
//! maps those to real bytes. [`MemBacking`] is plain memory (tests, and
//! the shape `bbb-workloads`' simulator backing mirrors so crashfuzz can
//! crash-sweep the protocol). [`FileBacking`] is a real file, durable
//! across process restarts. The `persist` hook is how the
//! [`FlushShim`](crate::FlushShim) reaches the engine's durability
//! primitive: cache-line flushes on hardware, `File::sync_data` here.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A byte store the ring persists into. Offsets are ring-relative; all
/// accesses are 8-byte words at 8-aligned offsets (the ring's own
/// alignment discipline guarantees this).
pub trait PBacking {
    /// Reads the word at `off`.
    ///
    /// # Errors
    ///
    /// Returns a description of an engine failure (I/O error,
    /// out-of-range offset).
    fn read_u64(&mut self, off: u64) -> Result<u64, String>;

    /// Writes the word at `off`. A plain store: durability comes from
    /// [`PBacking::persist`] or from the machine's battery.
    ///
    /// # Errors
    ///
    /// Returns a description of an engine failure.
    fn write_u64(&mut self, off: u64, value: u64) -> Result<(), String>;

    /// Makes prior writes to the listed 64-byte blocks durable, then
    /// fences: nothing written after this call may become durable before
    /// the listed blocks are. An empty list is a pure ordering fence.
    ///
    /// # Errors
    ///
    /// Returns a description of an engine failure.
    fn persist(&mut self, blocks: &[u64]) -> Result<(), String>;
}

/// An in-memory backing: fast, crash-free, counts persist calls so tests
/// can assert the shim's flush behavior.
#[derive(Debug, Clone)]
pub struct MemBacking {
    bytes: Vec<u8>,
    persist_calls: u64,
}

impl MemBacking {
    /// A zeroed backing of `len` bytes.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            bytes: vec![0; len],
            persist_calls: 0,
        }
    }

    /// How many times [`PBacking::persist`] ran (flushes or fences).
    #[must_use]
    pub fn persist_calls(&self) -> u64 {
        self.persist_calls
    }

    /// The raw bytes (recovery tests corrupt them directly).
    #[must_use]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl PBacking for MemBacking {
    fn read_u64(&mut self, off: u64) -> Result<u64, String> {
        let i = off as usize;
        let end = i.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("read past backing end: off {off}"))?;
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.bytes[i..end]);
        Ok(u64::from_le_bytes(w))
    }

    fn write_u64(&mut self, off: u64, value: u64) -> Result<(), String> {
        let i = off as usize;
        let end = i.checked_add(8).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| format!("write past backing end: off {off}"))?;
        self.bytes[i..end].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn persist(&mut self, _blocks: &[u64]) -> Result<(), String> {
        self.persist_calls += 1;
        Ok(())
    }
}

/// A file backing: each ring word lives at the same offset in the file,
/// and `persist` maps to `File::sync_data`.
///
/// `std` exposes no ranged sync, so the shim's dirty-block list — the
/// range a `sync_file_range`-style call would take — collapses to one
/// conservative whole-file `sync_data` per barrier. The *count* of
/// barriers still matches the minimal protocol (two per commit), which is
/// what dominates on a real disk.
#[derive(Debug)]
pub struct FileBacking {
    file: File,
    syncs: u64,
}

impl FileBacking {
    /// Opens (creating if absent) the ring file at `path`, sized to hold
    /// `len` bytes. An existing longer file is left untouched beyond a
    /// size check.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O failure.
    pub fn open(path: &Path, len: u64) -> Result<Self, String> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let cur = file
            .metadata()
            .map_err(|e| format!("stat {}: {e}", path.display()))?
            .len();
        if cur < len {
            file.set_len(len)
                .map_err(|e| format!("grow {}: {e}", path.display()))?;
        }
        Ok(Self { file, syncs: 0 })
    }

    /// `sync_data` calls issued so far.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.syncs
    }
}

impl PBacking for FileBacking {
    fn read_u64(&mut self, off: u64) -> Result<u64, String> {
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| format!("seek {off}: {e}"))?;
        let mut w = [0u8; 8];
        self.file
            .read_exact(&mut w)
            .map_err(|e| format!("read {off}: {e}"))?;
        Ok(u64::from_le_bytes(w))
    }

    fn write_u64(&mut self, off: u64, value: u64) -> Result<(), String> {
        self.file
            .seek(SeekFrom::Start(off))
            .map_err(|e| format!("seek {off}: {e}"))?;
        self.file
            .write_all(&value.to_le_bytes())
            .map_err(|e| format!("write {off}: {e}"))
    }

    fn persist(&mut self, _blocks: &[u64]) -> Result<(), String> {
        self.syncs += 1;
        self.file.sync_data().map_err(|e| format!("sync_data: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backing_round_trips_words() {
        let mut b = MemBacking::new(128);
        b.write_u64(8, 0xDEAD_BEEF_u64).unwrap();
        assert_eq!(b.read_u64(8).unwrap(), 0xDEAD_BEEF);
        assert_eq!(b.read_u64(16).unwrap(), 0);
        assert!(b.read_u64(128).is_err());
        assert!(b.write_u64(121, 1).is_err());
    }

    #[test]
    fn file_backing_round_trips_and_syncs() {
        let dir = std::env::temp_dir().join("bbb-pstore-backing-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.dat");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBacking::open(&path, 4096).unwrap();
            b.write_u64(256, 42).unwrap();
            b.persist(&[4]).unwrap();
            assert_eq!(b.syncs(), 1);
        }
        let mut b = FileBacking::open(&path, 4096).unwrap();
        assert_eq!(b.read_u64(256).unwrap(), 42, "durable across reopen");
        let _ = std::fs::remove_file(&path);
    }
}

//! The FliT-style per-object flush-tracking shim.
//!
//! Persistent-structure code written for BBB issues plain stores; the shim
//! is the one adapter that makes the *same* code strict-persistency-safe
//! on machines without battery-backed buffers. Every ring store is noted
//! here; at the protocol's ordering points the ring calls
//! [`FlushShim::barrier`], and only under [`Discipline::FlushFence`] does
//! that turn into cache-line flushes (one per dirtied 64-byte block, the
//! minimal set) plus a fence. Under [`Discipline::BufferBacked`] a barrier
//! is a no-op — exactly the paper's "unmodified code is crash consistent"
//! claim, expressed as a zero-cost code path.

use std::collections::BTreeSet;

use crate::backing::PBacking;

/// Persist-ordering granule: one cache line.
pub const BLOCK_BYTES: u64 = 64;

/// How stores become durable on the machine running the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Battery-backed buffers or eADR: visibility is persistency; barriers
    /// are free and the shim tracks nothing.
    BufferBacked,
    /// ADR/strict PMEM: durability needs explicit `clwb`-style flushes of
    /// every dirtied line, fenced at each ordering point.
    FlushFence,
    /// Buffered epoch persistency: ordering points need only a fence (the
    /// hardware drains buffers in epoch order); no per-line flushes.
    EpochOrdered,
}

/// Tracks the 64-byte blocks dirtied since the last barrier and replays
/// them as the minimal flush set when the discipline requires it.
#[derive(Debug, Clone)]
pub struct FlushShim {
    discipline: Discipline,
    dirty: BTreeSet<u64>,
    barriers: u64,
    flushed_blocks: u64,
}

impl FlushShim {
    /// A shim for `discipline` with nothing dirty.
    #[must_use]
    pub fn new(discipline: Discipline) -> Self {
        Self {
            discipline,
            dirty: BTreeSet::new(),
            barriers: 0,
            flushed_blocks: 0,
        }
    }

    /// The discipline this shim enforces.
    #[must_use]
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Notes a store of `len` bytes at ring offset `off`. Only
    /// [`Discipline::FlushFence`] pays for tracking.
    pub fn note_write(&mut self, off: u64, len: u64) {
        if self.discipline == Discipline::FlushFence && len > 0 {
            let first = off / BLOCK_BYTES;
            let last = (off + len - 1) / BLOCK_BYTES;
            for b in first..=last {
                self.dirty.insert(b);
            }
        }
    }

    /// An ordering point: everything stored before it must be durable
    /// before anything stored after it. Flushes the dirty set (ascending
    /// block order) and fences as the discipline demands.
    ///
    /// # Errors
    ///
    /// Propagates backing failures.
    pub fn barrier<B: PBacking>(&mut self, backing: &mut B) -> Result<(), String> {
        self.barriers += 1;
        match self.discipline {
            Discipline::BufferBacked => Ok(()),
            Discipline::FlushFence => {
                let blocks: Vec<u64> = std::mem::take(&mut self.dirty).into_iter().collect();
                self.flushed_blocks += blocks.len() as u64;
                backing.persist(&blocks)
            }
            Discipline::EpochOrdered => backing.persist(&[]),
        }
    }

    /// Ordering points crossed so far.
    #[must_use]
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Blocks flushed so far (always 0 except under
    /// [`Discipline::FlushFence`]).
    #[must_use]
    pub fn flushed_blocks(&self) -> u64 {
        self.flushed_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;

    #[test]
    fn buffer_backed_barriers_are_free() {
        let mut b = MemBacking::new(4096);
        let mut s = FlushShim::new(Discipline::BufferBacked);
        s.note_write(0, 64);
        s.note_write(100, 8);
        s.barrier(&mut b).unwrap();
        assert_eq!(s.flushed_blocks(), 0);
        assert_eq!(b.persist_calls(), 0, "no flush, no fence");
    }

    #[test]
    fn flush_fence_flushes_exactly_the_dirtied_blocks() {
        let mut b = MemBacking::new(4096);
        let mut s = FlushShim::new(Discipline::FlushFence);
        s.note_write(8, 8); // block 0
        s.note_write(60, 8); // straddles blocks 0 and 1
        s.note_write(200, 8); // block 3
        s.barrier(&mut b).unwrap();
        assert_eq!(s.flushed_blocks(), 3, "blocks 0, 1, 3 — nothing else");
        assert_eq!(b.persist_calls(), 1);
        // The set drains: a second barrier with no new writes is flush-free.
        s.barrier(&mut b).unwrap();
        assert_eq!(s.flushed_blocks(), 3);
    }

    #[test]
    fn epoch_ordered_fences_without_flushing() {
        let mut b = MemBacking::new(4096);
        let mut s = FlushShim::new(Discipline::EpochOrdered);
        s.note_write(0, 64);
        s.barrier(&mut b).unwrap();
        assert_eq!(s.flushed_blocks(), 0);
        assert_eq!(b.persist_calls(), 1, "fence only");
    }
}

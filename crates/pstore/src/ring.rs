//! The SPSC persistent ring: header layout, grant state machine, commit
//! and release paths.
//!
//! ## Layout (ring-relative offsets, one live word per 64-byte block)
//!
//! ```text
//! +0    MAGIC_OFF             magic          | +8 capacity
//! +64   COMMIT_WATERMARK_OFF  committed_off  | +72 committed_seq
//! +128  READ_MARK_OFF         read_off       (consumer, persist-first)
//! +192  READ_PUB_OFF          read_pub       (consumer, publish-second)
//! +256  DATA_OFF              capacity bytes of record storage
//! ```
//!
//! Offsets are *monotone*: `committed_off`, `read_off`, and `read_pub`
//! only grow; a record's storage position is `off % capacity`. Each live
//! header word owns its own cache block so no two protocol words can tear
//! together (the `committed_off`/`committed_seq` pair shares block 1 by
//! design — they form one watermark and are validated against each other
//! at recovery).
//!
//! ## Record framing
//!
//! `word0 = len (low 32) | cksum (high 32)`, then `seq`, then `len`
//! payload bytes (8-aligned; a record never straddles the capacity
//! boundary — a `PAD` word fills the lap tail instead).
//!
//! ## Ordering points
//!
//! A commit is exactly two [`FlushShim::barrier`]s: *data barrier* (pad +
//! payload + seq + word0 durable before the watermark moves) then
//! *publish barrier* (watermark durable before the producer may reuse
//! released space it unlocks). A release mirrors it: `read_off` is marked
//! and made durable *before* `read_pub` is published, so any space the
//! producer overwrites is provably recorded as consumed in the persistent
//! image — the recovery parse can never walk into recycled bytes.

use crate::backing::PBacking;
use crate::recover::{parse_window, recover, Record};
use crate::shim::{Discipline, FlushShim};
use crate::GrantError;

/// Header offset of the magic word (`+8`: capacity).
pub const MAGIC_OFF: u64 = 0;
/// Header offset of the committed-grant watermark.
pub const COMMIT_WATERMARK_OFF: u64 = 64;
/// Header offset of the last committed sequence number (same block as the
/// watermark: one logical word pair).
pub const COMMIT_SEQ_OFF: u64 = 72;
/// Header offset of the consumer's durable consumption mark.
pub const READ_MARK_OFF: u64 = 128;
/// Header offset of the consumer's space-release publication.
pub const READ_PUB_OFF: u64 = 192;
/// First data byte; the data area is `capacity` bytes.
pub const DATA_OFF: u64 = 256;

/// Identifies a bbb-pstore ring (version 1).
pub const PSTORE_MAGIC: u64 = 0x4242_4250_5354_5231; // "BBPSTR1"

/// Largest payload a single grant may carry.
pub const MAX_PAYLOAD_BYTES: u64 = 256;

/// The lap-tail filler: a `word0` of all ones marks the rest of the lap
/// as dead space.
pub(crate) const PAD_WORD: u64 = u64::MAX;

/// Bytes of framing before the payload (`word0` + `seq`).
pub(crate) const RECORD_HEADER_BYTES: u64 = 16;

fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finalizer: full-avalanche, dependency-free.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The record checksum: seq-seeded fold over the payload words, so a
/// stale payload under a fresh header (or vice versa) cannot verify.
#[must_use]
pub(crate) fn record_cksum(seq: u64, payload: &[u8]) -> u32 {
    let mut h = mix64(seq ^ 0x9E37_79B9_7F4A_7C15);
    for chunk in payload.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(w));
    }
    (h ^ (h >> 32)) as u32
}

/// Backing address of monotone data offset `off`.
pub(crate) fn data_addr(capacity: u64, off: u64) -> u64 {
    DATA_OFF + off % capacity
}

/// Storage footprint of a ring with `capacity` data bytes.
#[must_use]
pub fn backing_len(capacity: u64) -> u64 {
    DATA_OFF + capacity
}

/// True when a complete, checksum-valid record carrying exactly `seq`
/// sits at data offset `off` — the shape a mid-commit crash leaves just
/// past the stale watermark (its data barrier ran; the watermark store
/// did not). Tolerates the lap-tail pad the commit may have laid first.
fn orphan_record_at<B: PBacking>(
    backing: &mut B,
    capacity: u64,
    off: u64,
    seq: u64,
) -> Result<bool, String> {
    if seq == 0 {
        return Ok(false);
    }
    let mut off = off;
    let mut word0 = backing.read_u64(data_addr(capacity, off))?;
    let rem = capacity - off % capacity;
    if word0 == PAD_WORD && rem < capacity {
        off += rem;
        word0 = backing.read_u64(data_addr(capacity, off))?;
    }
    let len = word0 & 0xFFFF_FFFF;
    let cksum = (word0 >> 32) as u32;
    if len == 0 || !len.is_multiple_of(8) || len > MAX_PAYLOAD_BYTES {
        return Ok(false);
    }
    if RECORD_HEADER_BYTES + len > capacity - off % capacity {
        return Ok(false);
    }
    if backing.read_u64(data_addr(capacity, off + 8))? != seq {
        return Ok(false);
    }
    let mut payload = vec![0u8; len as usize];
    for (i, chunk) in payload.chunks_mut(8).enumerate() {
        let w = backing.read_u64(data_addr(
            capacity,
            off + RECORD_HEADER_BYTES + 8 * i as u64,
        ))?;
        chunk.copy_from_slice(&w.to_le_bytes()[..chunk.len()]);
    }
    Ok(record_cksum(seq, &payload) == cksum)
}

fn check_capacity(capacity: u64) -> Result<(), String> {
    if capacity < 512 || !capacity.is_multiple_of(64) {
        return Err(format!(
            "capacity {capacity}: need a multiple of 64, at least 512"
        ));
    }
    Ok(())
}

/// An open write grant: reserved ring space plus the caller's staging
/// buffer. Fill `payload`, then [`RingWriter::commit`].
#[derive(Debug)]
pub struct WriteGrant {
    pub(crate) off: u64,
    pub(crate) pad: u64,
    /// Sequence number this grant will commit as.
    pub seq: u64,
    /// Caller-filled payload bytes (length fixed at grant time).
    pub payload: Vec<u8>,
}

impl WriteGrant {
    /// Monotone data offset the record will occupy.
    #[must_use]
    pub fn off(&self) -> u64 {
        self.off
    }
}

/// The producer end.
#[derive(Debug, Clone)]
pub struct RingWriter {
    capacity: u64,
    committed_off: u64,
    next_seq: u64,
    shim: FlushShim,
}

impl RingWriter {
    /// Formats a fresh ring of `capacity` data bytes into `backing` and
    /// returns its producer end.
    ///
    /// Formatting is crash-atomic: the magic is *invalidated first* and
    /// *stamped last*, each behind a barrier, so a crash at any store
    /// boundary leaves either a file [`crate::is_formatted`] reports as
    /// unformatted (safe to format again) or a complete empty ring —
    /// never a half-written header that recovery would trust.
    ///
    /// # Errors
    ///
    /// Invalid capacity or backing failure.
    pub fn create<B: PBacking>(
        backing: &mut B,
        capacity: u64,
        discipline: Discipline,
    ) -> Result<Self, String> {
        check_capacity(capacity)?;
        let mut shim = FlushShim::new(discipline);
        backing.write_u64(MAGIC_OFF, 0)?;
        shim.note_write(MAGIC_OFF, 8);
        shim.barrier(backing)?;
        for (off, v) in [
            (MAGIC_OFF + 8, capacity),
            (COMMIT_WATERMARK_OFF, 0),
            (COMMIT_SEQ_OFF, 0),
            (READ_MARK_OFF, 0),
            (READ_PUB_OFF, 0),
        ] {
            backing.write_u64(off, v)?;
            shim.note_write(off, 8);
        }
        shim.barrier(backing)?;
        backing.write_u64(MAGIC_OFF, PSTORE_MAGIC)?;
        shim.note_write(MAGIC_OFF, 8);
        shim.barrier(backing)?;
        Ok(Self {
            capacity,
            committed_off: 0,
            next_seq: 1,
            shim,
        })
    }

    /// Re-attaches a producer to an existing ring: recovers, validates,
    /// and positions after the last committed grant.
    ///
    /// A crash between the watermark pair's two stores leaves
    /// `committed_seq` one ahead of `committed_off` (see [`Self::commit`]).
    /// The record that seq names was never visible, so the attach rolls it
    /// back: the next grant reuses the orphaned sequence number and its
    /// commit overwrites the orphan bytes. Skipping to `committed_seq + 1`
    /// instead would put a permanent gap in the sequence chain — which
    /// recovery would then reject as torn.
    ///
    /// # Errors
    ///
    /// Structural recovery failure or backing failure.
    pub fn attach<B: PBacking>(backing: &mut B, discipline: Discipline) -> Result<Self, String> {
        let snap = recover(backing)?;
        let torn = match snap.records.last() {
            // Non-empty window: the last visible record anchors the pair.
            Some(last) => last.seq + 1 == snap.committed_seq,
            // Fully-consumed window: the anchor is gone, but in the torn
            // state the orphan record itself is durable at the stale
            // watermark (the data barrier precedes the seq store), so
            // probe for it. A stale previous-lap record there cannot
            // carry `committed_seq` — sequence numbers never repeat.
            None => orphan_record_at(
                backing,
                snap.capacity,
                snap.committed_off,
                snap.committed_seq,
            )?,
        };
        Ok(Self {
            capacity: snap.capacity,
            committed_off: snap.committed_off,
            next_seq: if torn {
                snap.committed_seq
            } else {
                snap.committed_seq + 1
            },
            shim: FlushShim::new(discipline),
        })
    }

    /// Ring data capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Sequence number the next committed grant will carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The flush shim (for inspecting barrier/flush counts).
    #[must_use]
    pub fn shim(&self) -> &FlushShim {
        &self.shim
    }

    /// Bytes a grant of `len` payload would consume, including framing
    /// and any lap-tail pad at the current watermark.
    #[must_use]
    pub fn grant_span(&self, len: u64) -> u64 {
        let pos = self.committed_off % self.capacity;
        let rem = self.capacity - pos;
        let pad = if rem < RECORD_HEADER_BYTES + len {
            rem
        } else {
            0
        };
        pad + RECORD_HEADER_BYTES + len
    }

    /// Reserves ring space for a `len`-byte payload. Fails with
    /// [`GrantError::WouldBlock`] until the consumer has *published*
    /// enough released space — the producer keys off `read_pub`, never
    /// off the (possibly not yet durable) `read_off`.
    ///
    /// # Errors
    ///
    /// See [`GrantError`].
    pub fn grant_write<B: PBacking>(
        &mut self,
        backing: &mut B,
        len: u64,
    ) -> Result<WriteGrant, GrantError> {
        if len == 0 || !len.is_multiple_of(8) || len > MAX_PAYLOAD_BYTES {
            return Err(GrantError::TooLarge);
        }
        let pos = self.committed_off % self.capacity;
        let rem = self.capacity - pos;
        let pad = if rem < RECORD_HEADER_BYTES + len {
            rem
        } else {
            0
        };
        let need = pad + RECORD_HEADER_BYTES + len;
        let read_pub = backing
            .read_u64(READ_PUB_OFF)
            .map_err(GrantError::Backing)?;
        if self.committed_off + need > read_pub + self.capacity {
            return Err(GrantError::WouldBlock);
        }
        Ok(WriteGrant {
            off: self.committed_off + pad,
            pad,
            seq: self.next_seq,
            payload: vec![0; len as usize],
        })
    }

    /// Commits a filled grant: writes pad + payload + seq + header, takes
    /// the data barrier, advances the `committed_off`/`committed_seq`
    /// watermark, and takes the publish barrier. On a battery-backed
    /// discipline both barriers are no-ops and the whole commit is plain
    /// stores.
    ///
    /// # Errors
    ///
    /// Backing failure, or a grant committed out of order.
    pub fn commit<B: PBacking>(
        &mut self,
        backing: &mut B,
        grant: &WriteGrant,
    ) -> Result<(), String> {
        if grant.seq != self.next_seq {
            return Err(format!(
                "grant seq {} committed out of order (expected {})",
                grant.seq, self.next_seq
            ));
        }
        let len = grant.payload.len() as u64;
        if grant.pad > 0 {
            self.put(
                backing,
                data_addr(self.capacity, self.committed_off),
                PAD_WORD,
            )?;
        }
        for (i, chunk) in grant.payload.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.put(
                backing,
                data_addr(
                    self.capacity,
                    grant.off + RECORD_HEADER_BYTES + 8 * i as u64,
                ),
                u64::from_le_bytes(w),
            )?;
        }
        self.put(backing, data_addr(self.capacity, grant.off + 8), grant.seq)?;
        let word0 = len | (u64::from(record_cksum(grant.seq, &grant.payload)) << 32);
        self.put(backing, data_addr(self.capacity, grant.off), word0)?;
        self.shim.barrier(backing)?; // data durable before the watermark
                                     // The watermark is a two-word pair and a crash (or a concurrent
                                     // reader) can land between the stores: seq goes first, so the only
                                     // observable torn state is seq one ahead of the watermark — which
                                     // recovery explicitly accepts. (Watermark-first would instead
                                     // expose off-ahead-of-seq, which is indistinguishable from a lost
                                     // record.)
        self.put(backing, COMMIT_SEQ_OFF, grant.seq)?;
        let new_off = grant.off + RECORD_HEADER_BYTES + len;
        self.put(backing, COMMIT_WATERMARK_OFF, new_off)?;
        self.shim.barrier(backing)?; // watermark durable before reuse
        self.committed_off = new_off;
        self.next_seq += 1;
        Ok(())
    }

    fn put<B: PBacking>(&mut self, backing: &mut B, off: u64, v: u64) -> Result<(), String> {
        backing.write_u64(off, v)?;
        self.shim.note_write(off, 8);
        Ok(())
    }
}

/// The consumer end.
#[derive(Debug, Clone)]
pub struct RingReader {
    capacity: u64,
    read_off: u64,
    marked_unpublished: bool,
    shim: FlushShim,
}

impl RingReader {
    /// Attaches a consumer to an existing ring at its recovered mark. If
    /// a crash separated a mark from its publication, the pending
    /// publication is replayed by the next [`RingReader::release_publish`].
    ///
    /// # Errors
    ///
    /// Structural recovery failure or backing failure.
    pub fn attach<B: PBacking>(backing: &mut B, discipline: Discipline) -> Result<Self, String> {
        let snap = recover(backing)?;
        Ok(Self {
            capacity: snap.capacity,
            read_off: snap.read_off,
            marked_unpublished: snap.read_pub != snap.read_off,
            shim: FlushShim::new(discipline),
        })
    }

    /// The consumer's current mark (monotone data offset).
    #[must_use]
    pub fn read_off(&self) -> u64 {
        self.read_off
    }

    /// True while a mark awaits its publication barrier.
    #[must_use]
    pub fn marked_unpublished(&self) -> bool {
        self.marked_unpublished
    }

    /// The flush shim (for inspecting barrier/flush counts).
    #[must_use]
    pub fn shim(&self) -> &FlushShim {
        &self.shim
    }

    /// Parses every committed-but-unconsumed record — the read grant.
    /// Returns records in commit order; consuming a prefix of them and
    /// passing the sum of their [`Record::span`]s to
    /// [`RingReader::release`] frees their space.
    ///
    /// # Errors
    ///
    /// Backing failure or a structurally invalid window (impossible on a
    /// healthy ring; crash images surface it as a recovery verdict).
    pub fn grant_read<B: PBacking>(&mut self, backing: &mut B) -> Result<Vec<Record>, String> {
        let committed_off = backing.read_u64(COMMIT_WATERMARK_OFF)?;
        let committed_seq = backing.read_u64(COMMIT_SEQ_OFF)?;
        parse_window(
            backing,
            self.capacity,
            self.read_off,
            committed_off,
            committed_seq,
        )
    }

    /// Marks `bytes` of the read grant consumed and makes the mark
    /// durable. Persist-first: the mark must be durable *before*
    /// [`RingReader::release_publish`] hands the space to the producer,
    /// or a crash could find recycled bytes inside the parse window.
    ///
    /// # Errors
    ///
    /// Backing failure.
    pub fn release_mark<B: PBacking>(&mut self, backing: &mut B, bytes: u64) -> Result<(), String> {
        self.read_off += bytes;
        backing.write_u64(READ_MARK_OFF, self.read_off)?;
        self.shim.note_write(READ_MARK_OFF, 8);
        self.shim.barrier(backing)?;
        self.marked_unpublished = true;
        Ok(())
    }

    /// Publishes the durable mark to the producer (`read_pub`), taking
    /// the trailing barrier so the publication itself is ordered.
    ///
    /// # Errors
    ///
    /// Backing failure.
    pub fn release_publish<B: PBacking>(&mut self, backing: &mut B) -> Result<(), String> {
        backing.write_u64(READ_PUB_OFF, self.read_off)?;
        self.shim.note_write(READ_PUB_OFF, 8);
        self.shim.barrier(backing)?;
        self.marked_unpublished = false;
        Ok(())
    }

    /// [`RingReader::release_mark`] + [`RingReader::release_publish`].
    ///
    /// # Errors
    ///
    /// Backing failure.
    pub fn release<B: PBacking>(&mut self, backing: &mut B, bytes: u64) -> Result<(), String> {
        self.release_mark(backing, bytes)?;
        self.release_publish(backing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;

    fn ring(capacity: u64) -> (MemBacking, RingWriter) {
        let mut b = MemBacking::new(backing_len(capacity) as usize);
        let w = RingWriter::create(&mut b, capacity, Discipline::BufferBacked).unwrap();
        (b, w)
    }

    fn append(b: &mut MemBacking, w: &mut RingWriter, bytes: &[u8]) -> u64 {
        let mut g = w.grant_write(b, bytes.len() as u64).unwrap();
        g.payload.copy_from_slice(bytes);
        let seq = g.seq;
        w.commit(b, &g).unwrap();
        seq
    }

    #[test]
    fn append_read_release_round_trip() {
        let (mut b, mut w) = ring(512);
        append(&mut b, &mut w, b"hello wo");
        append(&mut b, &mut w, b"rld.....");
        let mut r = RingReader::attach(&mut b, Discipline::BufferBacked).unwrap();
        let recs = r.grant_read(&mut b).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 1);
        assert_eq!(recs[0].payload, b"hello wo");
        assert_eq!(recs[1].seq, 2);
        let span = recs[0].span;
        r.release(&mut b, span).unwrap();
        let recs = r.grant_read(&mut b).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 2);
    }

    #[test]
    fn ring_wraps_through_many_laps() {
        let (mut b, mut w) = ring(512);
        let mut r = RingReader::attach(&mut b, Discipline::BufferBacked).unwrap();
        let mut consumed = 1u64;
        for i in 0..200u64 {
            let len = 8 * (1 + i % 4);
            let payload: Vec<u8> = (0..len).map(|j| (i + j) as u8).collect();
            loop {
                match w.grant_write(&mut b, len) {
                    Ok(mut g) => {
                        g.payload.copy_from_slice(&payload);
                        w.commit(&mut b, &g).unwrap();
                        break;
                    }
                    Err(GrantError::WouldBlock) => {
                        let recs = r.grant_read(&mut b).unwrap();
                        assert!(!recs.is_empty(), "full ring must have records");
                        assert_eq!(recs[0].seq, consumed, "strict prefix consumption");
                        consumed += 1;
                        let span = recs[0].span;
                        r.release(&mut b, span).unwrap();
                    }
                    Err(e) => panic!("grant failed: {e}"),
                }
            }
        }
        let recs = r.grant_read(&mut b).unwrap();
        assert_eq!(recs.last().unwrap().seq, 200);
    }

    #[test]
    fn grants_respect_unpublished_marks() {
        // Marked-but-unpublished space must NOT be grantable: the
        // producer keys off read_pub alone.
        let (mut b, mut w) = ring(512);
        for _ in 0..15 {
            append(&mut b, &mut w, &[7u8; 16]);
        }
        assert!(matches!(
            w.grant_write(&mut b, 64),
            Err(GrantError::WouldBlock)
        ));
        let mut r = RingReader::attach(&mut b, Discipline::BufferBacked).unwrap();
        let recs = r.grant_read(&mut b).unwrap();
        let bytes: u64 = recs.iter().take(4).map(|x| x.span).sum();
        r.release_mark(&mut b, bytes).unwrap();
        assert!(
            matches!(w.grant_write(&mut b, 64), Err(GrantError::WouldBlock)),
            "marked space is not yet published"
        );
        r.release_publish(&mut b).unwrap();
        assert!(w.grant_write(&mut b, 64).is_ok());
    }

    #[test]
    fn bad_grants_are_rejected() {
        let (mut b, mut w) = ring(512);
        assert_eq!(w.grant_write(&mut b, 0).unwrap_err(), GrantError::TooLarge);
        assert_eq!(w.grant_write(&mut b, 12).unwrap_err(), GrantError::TooLarge);
        assert_eq!(
            w.grant_write(&mut b, MAX_PAYLOAD_BYTES + 8).unwrap_err(),
            GrantError::TooLarge
        );
        let g1 = w.grant_write(&mut b, 8).unwrap();
        let _g2 = w.grant_write(&mut b, 8).unwrap(); // re-grant same slot is fine
        w.commit(&mut b, &g1).unwrap();
        let stale = WriteGrant {
            off: g1.off,
            pad: 0,
            seq: g1.seq, // already committed
            payload: vec![0; 8],
        };
        assert!(w.commit(&mut b, &stale).is_err(), "out-of-order commit");
    }

    #[test]
    fn flush_fence_commit_takes_exactly_two_barriers() {
        let mut b = MemBacking::new(backing_len(512) as usize);
        let mut w = RingWriter::create(&mut b, 512, Discipline::FlushFence).unwrap();
        let barriers = w.shim().barriers();
        let flushed = w.shim().flushed_blocks();
        append_ff(&mut b, &mut w);
        assert_eq!(w.shim().barriers() - barriers, 2, "data + publish");
        // One data block + the watermark's header block; the minimal
        // set, not the whole ring.
        assert_eq!(w.shim().flushed_blocks() - flushed, 2);
    }

    fn append_ff(b: &mut MemBacking, w: &mut RingWriter) {
        let mut g = w.grant_write(b, 16).unwrap();
        g.payload.copy_from_slice(&[3u8; 16]);
        w.commit(b, &g).unwrap();
    }

    /// Rebuilds the exact torn-pair crash image: commit a record fully,
    /// then put the *old* watermark back — data and seq durable, the
    /// watermark store lost. (`commit` stores seq before the watermark,
    /// so this is the one torn state a crash can expose.)
    fn tear_last_commit(b: &mut MemBacking, old_watermark: u64) {
        b.write_u64(COMMIT_WATERMARK_OFF, old_watermark).unwrap();
    }

    #[test]
    fn reattach_after_torn_watermark_pair_reuses_the_orphan_seq() {
        let (mut b, mut w) = ring(512);
        append(&mut b, &mut w, &[1u8; 8]);
        append(&mut b, &mut w, &[2u8; 8]);
        let stale = b.read_u64(COMMIT_WATERMARK_OFF).unwrap();
        append(&mut b, &mut w, &[3u8; 8]);
        tear_last_commit(&mut b, stale);
        drop(w);
        let mut w = RingWriter::attach(&mut b, Discipline::BufferBacked).unwrap();
        assert_eq!(
            w.next_seq(),
            3,
            "orphaned seq 3 must be reused, not skipped"
        );
        append(&mut b, &mut w, &[30u8; 8]);
        let mut r = RingReader::attach(&mut b, Discipline::BufferBacked).unwrap();
        let recs = r.grant_read(&mut b).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].seq, 3);
        assert_eq!(
            recs[2].payload,
            vec![30u8; 8],
            "recommit overwrote the orphan"
        );
    }

    #[test]
    fn reattach_after_torn_pair_with_consumed_window_probes_the_orphan() {
        // The harder case: every visible record was consumed before the
        // torn commit, so no window record anchors the pair — attach must
        // find the durable orphan record itself.
        let (mut b, mut w) = ring(512);
        append(&mut b, &mut w, &[1u8; 8]);
        append(&mut b, &mut w, &[2u8; 8]);
        let mut r = RingReader::attach(&mut b, Discipline::BufferBacked).unwrap();
        let recs = r.grant_read(&mut b).unwrap();
        let bytes: u64 = recs.iter().map(|x| x.span).sum();
        r.release(&mut b, bytes).unwrap();
        let stale = b.read_u64(COMMIT_WATERMARK_OFF).unwrap();
        append(&mut b, &mut w, &[3u8; 8]);
        tear_last_commit(&mut b, stale);
        drop(w);
        let mut w = RingWriter::attach(&mut b, Discipline::BufferBacked).unwrap();
        assert_eq!(
            w.next_seq(),
            3,
            "empty-window torn pair must also roll back"
        );
        append(&mut b, &mut w, &[33u8; 8]);
        let recs = r.grant_read(&mut b).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!((recs[0].seq, recs[0].payload.clone()), (3, vec![33u8; 8]));
        // And a *clean* fully-consumed ring must NOT roll back: seq 3 is
        // genuinely committed here, so the next grant is 4.
        let (mut b, mut w) = ring(512);
        for v in 1..=3u8 {
            append(&mut b, &mut w, &[v; 8]);
        }
        let mut r = RingReader::attach(&mut b, Discipline::BufferBacked).unwrap();
        let bytes: u64 = r.grant_read(&mut b).unwrap().iter().map(|x| x.span).sum();
        r.release(&mut b, bytes).unwrap();
        drop(w);
        let w = RingWriter::attach(&mut b, Discipline::BufferBacked).unwrap();
        assert_eq!(
            w.next_seq(),
            4,
            "clean consumed ring must not re-issue seq 3"
        );
    }

    #[test]
    fn create_is_format_atomic_at_every_store_boundary() {
        // Journal the format's stores, then cut at every prefix — over a
        // zeroed file AND over a live formatted ring. Each cut must read
        // back either unformatted or as a complete empty ring.
        struct Journal {
            mem: MemBacking,
            writes: Vec<(u64, u64)>,
        }
        impl PBacking for Journal {
            fn read_u64(&mut self, off: u64) -> Result<u64, String> {
                self.mem.read_u64(off)
            }
            fn write_u64(&mut self, off: u64, v: u64) -> Result<(), String> {
                self.writes.push((off, v));
                self.mem.write_u64(off, v)
            }
            fn persist(&mut self, blocks: &[u64]) -> Result<(), String> {
                self.mem.persist(blocks)
            }
        }
        let fresh = MemBacking::new(backing_len(512) as usize);
        let (live, _) = {
            let (mut b, mut w) = ring(512);
            append(&mut b, &mut w, b"survivor");
            (b, w)
        };
        for base in [fresh, live] {
            let mut j = Journal {
                mem: base.clone(),
                writes: Vec::new(),
            };
            RingWriter::create(&mut j, 512, Discipline::BufferBacked).unwrap();
            for cut in 0..=j.writes.len() {
                let mut img = base.clone();
                for &(off, v) in &j.writes[..cut] {
                    img.write_u64(off, v).unwrap();
                }
                if crate::is_formatted(&mut img).unwrap() {
                    let snap = recover(&mut img)
                        .unwrap_or_else(|e| panic!("cut {cut}: formatted but unrecoverable: {e}"));
                    assert!(
                        cut == 0 || snap.records.is_empty(),
                        "cut {cut}: half-format leaked records"
                    );
                } else {
                    assert!(cut < j.writes.len(), "full format must stamp the magic");
                }
            }
        }
    }

    #[test]
    fn writer_reattaches_where_it_left_off() {
        let (mut b, mut w) = ring(512);
        append(&mut b, &mut w, &[1u8; 8]);
        append(&mut b, &mut w, &[2u8; 8]);
        drop(w);
        let mut w = RingWriter::attach(&mut b, Discipline::BufferBacked).unwrap();
        assert_eq!(w.next_seq(), 3);
        append(&mut b, &mut w, &[3u8; 8]);
        let mut r = RingReader::attach(&mut b, Discipline::BufferBacked).unwrap();
        let recs = r.grant_read(&mut b).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].payload, vec![3u8; 8]);
    }
}

//! Crash recovery: re-deriving the committed window from the header and
//! proving it is a clean prefix of committed grants.
//!
//! The parse accepts exactly the states the protocol's ordering points
//! allow and rejects everything else: bad magic, incoherent watermarks, a
//! window that ends in padding, torn or mis-framed records, checksum
//! mismatches, and — via the `committed_seq` anchor — any stale-lap
//! record that survived with a valid checksum but the wrong sequence
//! number. The crashfuzz oracle feeds every simulator crash image through
//! here; the battery-dropped images are *expected* to fail (or recover
//! strictly less), which is what gives the sweep teeth.

use crate::backing::PBacking;
use crate::ring::{
    data_addr, record_cksum, COMMIT_SEQ_OFF, COMMIT_WATERMARK_OFF, MAGIC_OFF, MAX_PAYLOAD_BYTES,
    PAD_WORD, PSTORE_MAGIC, READ_MARK_OFF, READ_PUB_OFF, RECORD_HEADER_BYTES,
};

/// One committed record as recovered from the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Commit sequence number (consecutive within a window).
    pub seq: u64,
    /// Monotone data offset of the record's `word0`.
    pub off: u64,
    /// Window bytes this record accounts for, including any lap-tail pad
    /// that preceded it — release exactly this much to free it.
    pub span: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Everything [`recover`] learned about a ring.
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// Data capacity in bytes.
    pub capacity: u64,
    /// Committed-grant watermark.
    pub committed_off: u64,
    /// Sequence number of the last committed grant (0 when none ever).
    pub committed_seq: u64,
    /// Consumer's durable consumption mark.
    pub read_off: u64,
    /// Consumer's published release point.
    pub read_pub: u64,
    /// The committed-but-unconsumed records, in commit order.
    pub records: Vec<Record>,
}

/// Walks `[read_off, committed_off)` validating framing, checksums, and
/// — anchored on `committed_seq` — sequence continuity.
///
/// # Errors
///
/// A description of the first structural inconsistency.
pub(crate) fn parse_window<B: PBacking>(
    backing: &mut B,
    capacity: u64,
    read_off: u64,
    committed_off: u64,
    committed_seq: u64,
) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    let mut off = read_off;
    let mut pending_pad = 0u64;
    while off < committed_off {
        let pos = off % capacity;
        let rem = capacity - pos;
        let word0 = backing.read_u64(data_addr(capacity, off))?;
        if word0 == PAD_WORD {
            if rem == capacity {
                return Err(format!("pad word at lap start (off {off})"));
            }
            if off + rem >= committed_off {
                return Err(format!("window ends in padding (off {off})"));
            }
            pending_pad += rem;
            off += rem;
            continue;
        }
        let len = word0 & 0xFFFF_FFFF;
        let cksum = (word0 >> 32) as u32;
        if len == 0 || !len.is_multiple_of(8) || len > MAX_PAYLOAD_BYTES {
            return Err(format!("record at off {off}: invalid length {len}"));
        }
        if RECORD_HEADER_BYTES + len > rem {
            return Err(format!("record at off {off}: straddles the lap boundary"));
        }
        if off + RECORD_HEADER_BYTES + len > committed_off {
            return Err(format!("record at off {off}: runs past the watermark"));
        }
        let seq = backing.read_u64(data_addr(capacity, off + 8))?;
        let mut payload = vec![0u8; len as usize];
        for (i, chunk) in payload.chunks_mut(8).enumerate() {
            let w = backing.read_u64(data_addr(
                capacity,
                off + RECORD_HEADER_BYTES + 8 * i as u64,
            ))?;
            chunk.copy_from_slice(&w.to_le_bytes()[..chunk.len()]);
        }
        if record_cksum(seq, &payload) != cksum {
            return Err(format!(
                "record at off {off} (seq {seq}): checksum mismatch"
            ));
        }
        records.push(Record {
            seq,
            off,
            span: pending_pad + RECORD_HEADER_BYTES + len,
            payload,
        });
        pending_pad = 0;
        off += RECORD_HEADER_BYTES + len;
    }
    // Sequence continuity, anchored on the committed_seq watermark: each
    // record must chain by exactly one from its predecessor, and the last
    // must be the one the watermark names — or its immediate predecessor,
    // because the commit path stores seq *before* the watermark and a
    // crash (or a concurrent read) between the two leaves seq exactly one
    // ahead. A stale previous-lap record with a valid checksum cannot
    // satisfy both chain and anchor.
    for pair in records.windows(2) {
        if pair[1].seq != pair[0].seq + 1 {
            return Err(format!(
                "record at off {} has seq {} (expected {})",
                pair[1].off,
                pair[1].seq,
                pair[0].seq + 1
            ));
        }
    }
    if let Some(last) = records.last() {
        if last.seq != committed_seq && last.seq + 1 != committed_seq {
            return Err(format!(
                "window ends at seq {} but the watermark names {committed_seq}",
                last.seq
            ));
        }
    }
    Ok(records)
}

/// True when `backing` holds a formatted ring (the magic word is
/// present). A file killed mid-[`crate::RingWriter::create`] reads back
/// `false` — the magic is stamped last — and is safe to format again.
///
/// # Errors
///
/// Backing failure.
pub fn is_formatted<B: PBacking>(backing: &mut B) -> Result<bool, String> {
    Ok(backing.read_u64(MAGIC_OFF)? == PSTORE_MAGIC)
}

/// Validates the header and parses the committed window.
///
/// # Errors
///
/// A description of the first structural inconsistency — the recovery
/// invariant is that a crash image of a correctly-disciplined machine
/// *never* produces one.
pub fn recover<B: PBacking>(backing: &mut B) -> Result<RingSnapshot, String> {
    let magic = backing.read_u64(MAGIC_OFF)?;
    if magic != PSTORE_MAGIC {
        return Err(format!("bad magic {magic:#x}"));
    }
    let capacity = backing.read_u64(MAGIC_OFF + 8)?;
    if capacity < 512 || !capacity.is_multiple_of(64) {
        return Err(format!("implausible capacity {capacity}"));
    }
    let committed_off = backing.read_u64(COMMIT_WATERMARK_OFF)?;
    let committed_seq = backing.read_u64(COMMIT_SEQ_OFF)?;
    let read_off = backing.read_u64(READ_MARK_OFF)?;
    let read_pub = backing.read_u64(READ_PUB_OFF)?;
    if read_pub > read_off {
        return Err(format!(
            "published release {read_pub} ahead of the durable mark {read_off}"
        ));
    }
    if read_off > committed_off {
        return Err(format!(
            "consumption mark {read_off} ahead of the watermark {committed_off}"
        ));
    }
    if committed_off - read_pub > capacity {
        return Err(format!(
            "window {read_pub}..{committed_off} exceeds capacity {capacity}"
        ));
    }
    if committed_off > 0 && committed_seq == 0 {
        return Err("watermark moved but no sequence ever committed".into());
    }
    let records = parse_window(backing, capacity, read_off, committed_off, committed_seq)?;
    Ok(RingSnapshot {
        capacity,
        committed_off,
        committed_seq,
        read_off,
        read_pub,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backing::MemBacking;
    use crate::ring::{backing_len, RingWriter, DATA_OFF};
    use crate::shim::Discipline;

    fn ring_with(n: u64) -> (MemBacking, RingWriter) {
        let mut b = MemBacking::new(backing_len(512) as usize);
        let mut w = RingWriter::create(&mut b, 512, Discipline::BufferBacked).unwrap();
        for i in 0..n {
            let mut g = w.grant_write(&mut b, 16).unwrap();
            g.payload.copy_from_slice(&[i as u8; 16]);
            w.commit(&mut b, &g).unwrap();
        }
        (b, w)
    }

    #[test]
    fn recovers_empty_and_filled_rings() {
        let (mut b, _) = ring_with(0);
        let s = recover(&mut b).unwrap();
        assert_eq!(s.records.len(), 0);
        assert_eq!(s.committed_seq, 0);
        let (mut b, _) = ring_with(5);
        let s = recover(&mut b).unwrap();
        assert_eq!(s.records.len(), 5);
        assert_eq!(s.committed_seq, 5);
        assert_eq!(s.records[4].payload, vec![4u8; 16]);
    }

    #[test]
    fn rejects_bad_magic_and_capacity() {
        let (mut b, _) = ring_with(1);
        b.write_u64(MAGIC_OFF, 0x1234).unwrap();
        assert!(recover(&mut b).unwrap_err().contains("bad magic"));
        let (mut b, _) = ring_with(1);
        b.write_u64(MAGIC_OFF + 8, 100).unwrap();
        assert!(recover(&mut b).unwrap_err().contains("capacity"));
    }

    #[test]
    fn rejects_torn_payload() {
        let (mut b, w) = ring_with(3);
        // Corrupt one payload word of the second record without touching
        // its header: checksum must catch it.
        let off = DATA_OFF + 32 + 16; // record 2's first payload word
        b.write_u64(off, 0xBAD0_BAD0).unwrap();
        assert!(recover(&mut b).unwrap_err().contains("checksum"));
        let _ = w;
    }

    #[test]
    fn rejects_stale_lap_record_via_seq_anchor() {
        let (mut b, _) = ring_with(4);
        // Overwrite record 4's bytes with the *valid bytes of record 2*
        // — checksum verifies, but the record sits at the wrong window
        // position, the shape a stale previous-lap survivor takes.
        let mut rec2 = [0u64; 4];
        for (i, w) in rec2.iter_mut().enumerate() {
            *w = b.read_u64(DATA_OFF + 32 + 8 * i as u64).unwrap();
        }
        for (i, w) in rec2.iter().enumerate() {
            b.write_u64(DATA_OFF + 96 + 8 * i as u64, *w).unwrap();
        }
        assert!(
            recover(&mut b).unwrap_err().contains("seq"),
            "a checksum-valid record in the wrong position must be rejected"
        );
    }

    #[test]
    fn rejects_incoherent_watermarks() {
        let (mut b, _) = ring_with(2);
        b.write_u64(crate::ring::READ_PUB_OFF, 1000).unwrap();
        assert!(recover(&mut b)
            .unwrap_err()
            .contains("ahead of the durable mark"));
        let (mut b, _) = ring_with(2);
        b.write_u64(crate::ring::READ_MARK_OFF, 1000).unwrap();
        assert!(recover(&mut b)
            .unwrap_err()
            .contains("ahead of the watermark"));
        let (mut b, _) = ring_with(2);
        b.write_u64(COMMIT_WATERMARK_OFF, 8192).unwrap();
        assert!(recover(&mut b).unwrap_err().contains("exceeds capacity"));
    }

    #[test]
    fn rejects_watermark_past_torn_record() {
        let (mut b, _) = ring_with(2);
        // Pretend a third record committed whose bytes never made it:
        // the watermark points into zeros.
        b.write_u64(COMMIT_WATERMARK_OFF, 96).unwrap();
        b.write_u64(COMMIT_SEQ_OFF, 3).unwrap();
        assert!(recover(&mut b).is_err());
    }
}

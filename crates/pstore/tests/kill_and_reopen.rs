//! File-engine regression pack: the ring must reopen to a clean prefix of
//! committed grants after dying at *any* point.
//!
//! Two attack shapes. The deterministic one replays every store prefix of
//! a real append/release history onto a copy of the base image — the
//! exact state a `kill -9` leaves (issued writes survive in the page
//! cache; un-issued ones never happened) — and demands that recovery
//! succeeds, reports a monotone prefix, and that a reattached producer
//! can keep appending without corrupting the sequence chain. The
//! nondeterministic one actually runs the `bbb-pstore` CLI as a child
//! process and kills it mid-append.

use std::process::{Command, Stdio};
use std::time::Duration;

use bbb_pstore::{
    backing_len, is_formatted, recover, Discipline, FileBacking, MemBacking, PBacking, RingReader,
    RingWriter,
};

/// A backing that journals every store so the test can replay arbitrary
/// program-order prefixes — the kill-at-any-syscall crash model.
struct TraceBacking {
    mem: MemBacking,
    writes: Vec<(u64, u64)>,
}

impl PBacking for TraceBacking {
    fn read_u64(&mut self, off: u64) -> Result<u64, String> {
        self.mem.read_u64(off)
    }
    fn write_u64(&mut self, off: u64, value: u64) -> Result<(), String> {
        self.writes.push((off, value));
        self.mem.write_u64(off, value)
    }
    fn persist(&mut self, blocks: &[u64]) -> Result<(), String> {
        self.mem.persist(blocks)
    }
}

fn payload_for(seq: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seq as u8).wrapping_add(i as u8))
        .collect()
}

#[test]
fn every_store_prefix_of_an_append_release_history_recovers_cleanly() {
    let capacity = 512u64;
    let mut base = MemBacking::new(backing_len(capacity) as usize);
    let writer = RingWriter::create(&mut base, capacity, Discipline::BufferBacked).unwrap();

    // Drive a history that laps the ring: appends of varied length with
    // releases interleaved, all stores journaled.
    let mut traced = TraceBacking {
        mem: base.clone(),
        writes: Vec::new(),
    };
    let mut w = writer;
    let mut r = RingReader::attach(&mut traced, Discipline::BufferBacked).unwrap();
    let mut appended = 0u64;
    for i in 0..30u64 {
        let len = 8 * (1 + (i % 3)) as usize;
        let mut g = loop {
            match w.grant_write(&mut traced, len as u64) {
                Ok(g) => break g,
                Err(bbb_pstore::GrantError::WouldBlock) => {
                    let span = r.grant_read(&mut traced).unwrap()[0].span;
                    r.release(&mut traced, span).unwrap();
                }
                Err(e) => panic!("grant: {e}"),
            }
        };
        g.payload.copy_from_slice(&payload_for(g.seq, len));
        w.commit(&mut traced, &g).unwrap();
        appended += 1;
    }
    assert_eq!(appended, 30);

    // Replay every prefix. At each cut: recovery must succeed, every
    // visible record must carry the payload its seq was committed with,
    // the visible count must never regress, and a producer reattached to
    // the image must be able to append one more record that recovery
    // then chains cleanly.
    let mut prev_last_seq = 0u64;
    for cut in 0..=traced.writes.len() {
        let mut img = base.clone();
        for &(off, v) in &traced.writes[..cut] {
            img.write_u64(off, v).unwrap();
        }
        let snap = recover(&mut img)
            .unwrap_or_else(|e| panic!("prefix {cut}/{}: {e}", traced.writes.len()));
        for rec in &snap.records {
            assert_eq!(
                rec.payload,
                payload_for(rec.seq, rec.payload.len()),
                "prefix {cut}: record seq {} torn",
                rec.seq
            );
        }
        if let Some(last) = snap.records.last() {
            assert!(
                last.seq >= prev_last_seq,
                "prefix {cut}: visible prefix regressed ({} < {prev_last_seq})",
                last.seq
            );
            prev_last_seq = last.seq;
        }

        let mut w2 = RingWriter::attach(&mut img, Discipline::BufferBacked).unwrap();
        let mut r2 = RingReader::attach(&mut img, Discipline::BufferBacked).unwrap();
        let mut g = loop {
            match w2.grant_write(&mut img, 8) {
                Ok(g) => break g,
                Err(bbb_pstore::GrantError::WouldBlock) => {
                    let span = r2.grant_read(&mut img).unwrap()[0].span;
                    r2.release(&mut img, span).unwrap();
                }
                Err(e) => panic!("prefix {cut}: regrant: {e}"),
            }
        };
        let seq = g.seq;
        g.payload.copy_from_slice(&payload_for(seq, 8));
        w2.commit(&mut img, &g).unwrap();
        let after = recover(&mut img)
            .unwrap_or_else(|e| panic!("prefix {cut}: ring unusable after reattach+append: {e}"));
        assert_eq!(
            after.records.last().map(|r| r.seq),
            Some(seq),
            "prefix {cut}: post-reattach append not visible"
        );
    }
}

#[test]
fn cli_survives_kill_minus_nine_mid_append_and_reopens() {
    let dir = std::env::temp_dir().join(format!("bbb-pstore-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ring.dat");
    let _ = std::fs::remove_file(&path);
    let bin = env!("CARGO_BIN_EXE_bbb-pstore");
    let capacity = 4096u64; // the CLI's ring size

    let mut prev_seq = 0u64;
    let rounds = 4u64;
    for round in 0..rounds {
        // 8-char messages pad to exactly one 8-byte payload word.
        let msgs: Vec<String> = (0..50).map(|j| format!("r{round}m{j:04}")).collect();
        let mut child = Command::new(bin)
            .arg(&path)
            .arg("append")
            .args(&msgs)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn bbb-pstore");
        if round + 1 < rounds {
            std::thread::sleep(Duration::from_millis(round * 2));
            let _ = child.kill();
        }
        let _ = child.wait();

        let mut backing = FileBacking::open(&path, backing_len(capacity)).unwrap();
        if !is_formatted(&mut backing).unwrap() {
            // Killed before the format stamped the magic: nothing was ever
            // committed, and the next round's CLI re-creates the ring.
            assert!(round + 1 < rounds, "the un-killed round must format");
            assert_eq!(prev_seq, 0, "ring unformatted after commits");
            continue;
        }
        let snap = recover(&mut backing).expect("ring must recover after kill -9");
        assert!(snap.records.len() <= msgs.len());
        for (i, rec) in snap.records.iter().enumerate() {
            assert_eq!(rec.seq, prev_seq + 1 + i as u64, "round {round}: seq gap");
            let mut want = msgs[i].clone().into_bytes();
            want.resize(8, 0);
            assert_eq!(rec.payload, want, "round {round}: record {} torn", rec.seq);
        }
        if round + 1 == rounds {
            assert_eq!(
                snap.records.len(),
                msgs.len(),
                "the un-killed round must commit everything"
            );
        }
        prev_seq += snap.records.len() as u64;

        // Release the window so later rounds never hit a full ring.
        if !snap.records.is_empty() {
            let bytes: u64 = snap.records.iter().map(|r| r.span).sum();
            let mut reader = RingReader::attach(&mut backing, Discipline::FlushFence).unwrap();
            reader.release(&mut backing, bytes).unwrap();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
